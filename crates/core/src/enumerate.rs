//! Enumerating the privileges weaker than a given one (§4.2).
//!
//! The paper observes — “to our surprise” — that the set
//! `{q : p ⊑φ q}` can be **infinite** (Example 6): with
//! `(r2, ¤(r1,r2)) ∈ PA`, every extra `¤(r1, ·)` wrapper produces another
//! weaker privilege, so a naive forward search does not terminate. Remark 2
//! conjectures that for practical purposes one can stop after `n`
//! applications of rule (3), where `n` is the length of the longest chain
//! in `RH`: deeper terms only add administrative indirection (an extra
//! self-granting step) without changing what can ultimately be granted.
//!
//! [`enumerate_weaker`] generates the weaker set level by level, bounded by
//! connective depth and a result cap, and reports the per-depth frontier
//! sizes so the non-termination of the naive search is observable (the
//! frontier never empties on Example-6-shaped policies).
//! [`remark2_depth`] computes the conjectured bound from the hierarchy.

use std::collections::{BTreeSet, HashMap};

use crate::ids::{Entity, PrivId, RoleId};
use crate::ordering::OrderingMode;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::universe::{Edge, EdgeTarget, PrivTerm, Universe};

/// Bounds for the enumeration.
#[derive(Clone, Copy, Debug)]
pub struct EnumerationConfig {
    /// Maximum connective depth of generated terms.
    pub max_depth: u32,
    /// Hard cap on the number of generated privileges (safety valve; the
    /// set is infinite in general).
    pub max_results: usize,
    /// Ordering semantics to enumerate under.
    pub mode: OrderingMode,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig {
            max_depth: 4,
            max_results: 100_000,
            mode: OrderingMode::Extended,
        }
    }
}

/// The (bounded) weaker set of a privilege.
#[derive(Clone, Debug)]
pub struct WeakerSet {
    /// All generated privileges `q` with `p ⊑φ q`, `p` itself included,
    /// deduplicated, in id order.
    pub privileges: Vec<PrivId>,
    /// How many privileges have each connective depth `0..=max_depth`
    /// (index = depth). On Example-6-shaped policies the tail never
    /// reaches zero — the observable form of the infinity result.
    pub frontier_by_depth: Vec<usize>,
    /// `true` iff `max_results` cut the enumeration short.
    ///
    /// Truncated results are sound (every member is weaker) but not
    /// monotone in `max_depth`: the generator explores depth-first, so a
    /// deeper bound can exhaust the generation budget on deep terms
    /// before surfacing shallow ones. Raise `max_results` for a complete
    /// set.
    pub truncated: bool,
}

/// The Remark 2 bound: the length of the longest chain in `RH`, measured
/// in roles.
pub fn remark2_depth(universe: &Universe, policy: &Policy) -> u32 {
    ReachIndex::build(universe, policy)
        .role_closure()
        .longest_chain_roles()
}

/// Enumerates `{q : p ⊑φ q}` up to the configured depth.
///
/// Generation follows the rules of Definition 8 directly, so the result is
/// sound and (up to the bounds) complete for the selected
/// [`OrderingMode`]; a test cross-checks it against
/// [`crate::ordering::PrivilegeOrder::is_weaker`] by exhaustive term
/// generation.
pub fn enumerate_weaker(
    universe: &mut Universe,
    policy: &Policy,
    p: PrivId,
    config: EnumerationConfig,
) -> WeakerSet {
    policy.check_universe(universe);
    let reach = ReachIndex::build(universe, policy);
    let vertices: Vec<PrivId> = policy.priv_vertices().into_iter().collect();
    let mut enumerator = Enumerator {
        universe,
        reach: &reach,
        vertices: &vertices,
        config,
        memo: HashMap::new(),
        generated: 0,
        truncated: false,
    };
    let set = enumerator.weaker(p, config.max_depth);
    let truncated = enumerator.truncated;
    let mut frontier_by_depth = vec![0usize; config.max_depth as usize + 1];
    for &q in &set {
        let d = enumerator.universe.depth(q) as usize;
        if d < frontier_by_depth.len() {
            frontier_by_depth[d] += 1;
        }
    }
    WeakerSet {
        privileges: set.into_iter().collect(),
        frontier_by_depth,
        truncated,
    }
}

struct Enumerator<'a> {
    universe: &'a mut Universe,
    reach: &'a ReachIndex,
    vertices: &'a [PrivId],
    config: EnumerationConfig,
    /// Memo keyed on `(privilege, remaining depth)`.
    memo: HashMap<(PrivId, u32), BTreeSet<PrivId>>,
    generated: usize,
    truncated: bool,
}

impl Enumerator<'_> {
    fn weaker(&mut self, p: PrivId, budget: u32) -> BTreeSet<PrivId> {
        if let Some(hit) = self.memo.get(&(p, budget)) {
            return hit.clone();
        }
        let mut out: BTreeSet<PrivId> = BTreeSet::new();
        // Rule (1).
        out.insert(p);
        if self.generated_overflow(out.len()) {
            self.memo.insert((p, budget), out.clone());
            return out;
        }
        let term = self.universe.term(p);
        let (edge, revocation) = match term {
            PrivTerm::Grant(e) => (Some(e), false),
            PrivTerm::Revoke(e)
                if matches!(self.config.mode, OrderingMode::ExtendedWithRevocation) =>
            {
                (Some(e), true)
            }
            _ => (None, false),
        };
        let Some(edge) = edge else {
            self.memo.insert((p, budget), out.clone());
            return out;
        };

        let sources = self.weaker_sources(edge.source());
        match edge.target() {
            EdgeTarget::Entity(b3) => {
                // Rule (2): every entity target reachable from b3.
                let targets = self.reachable_roles(b3);
                for &v1 in &sources {
                    for &b4 in &targets {
                        let q_edge = match v1 {
                            Entity::User(u) => Edge::UserRole(u, b4),
                            Entity::Role(r) => Edge::RoleRole(r, b4),
                        };
                        let q = self.intern(q_edge, revocation);
                        out.insert(q);
                    }
                }
                // Rule (2ext∘3*): wrap the weaker set of any reachable
                // vertex. Sources of ¤(r, p) terms must be roles.
                if !matches!(self.config.mode, OrderingMode::Strict) && budget >= 1 {
                    let witnesses: Vec<PrivId> = self
                        .vertices
                        .iter()
                        .copied()
                        .filter(|&w| self.reach.reach_priv(b3, w))
                        .collect();
                    for w in witnesses {
                        let inner = self.weaker_bounded(w, budget - 1);
                        self.wrap_all(&sources, &inner, revocation, &mut out);
                    }
                }
            }
            EdgeTarget::Priv(p1) => {
                // Rule (3): wrap the weaker set of the nested privilege.
                if budget >= 1 {
                    let inner = self.weaker_bounded(p1, budget - 1);
                    self.wrap_all(&sources, &inner, revocation, &mut out);
                }
            }
        }
        // Enforce the depth bound uniformly (rule-2 results inherit p's
        // depth, which is within bounds by induction).
        out.retain(|&q| self.universe.depth(q) <= self.config.max_depth);
        self.memo.insert((p, budget), out.clone());
        out
    }

    /// Weaker set where every member must fit in `budget` depth.
    fn weaker_bounded(&mut self, p: PrivId, budget: u32) -> BTreeSet<PrivId> {
        let set = self.weaker(p, budget);
        set.into_iter()
            .filter(|&q| self.universe.depth(q) <= budget)
            .collect()
    }

    /// Wraps every `q2` in `inner` as `¤(r, q2)` (or `♦`) for every role
    /// source in `sources`.
    fn wrap_all(
        &mut self,
        sources: &[Entity],
        inner: &BTreeSet<PrivId>,
        revocation: bool,
        out: &mut BTreeSet<PrivId>,
    ) {
        for &v1 in sources {
            let Entity::Role(r) = v1 else {
                continue; // ¤(r, p) requires a role source
            };
            for &q2 in inner {
                if self.generated_overflow(out.len()) {
                    return;
                }
                let q = self.intern(Edge::RolePriv(r, q2), revocation);
                out.insert(q);
            }
        }
    }

    fn intern(&mut self, edge: Edge, revocation: bool) -> PrivId {
        self.generated += 1;
        if revocation {
            self.universe.priv_revoke(edge)
        } else {
            self.universe.priv_grant(edge)
        }
    }

    fn generated_overflow(&mut self, current: usize) -> bool {
        if current >= self.config.max_results
            || self.generated >= self.config.max_results.saturating_mul(16)
        {
            self.truncated = true;
            true
        } else {
            false
        }
    }

    /// Entities `v1` with `v1 →φ v2` — candidate sources for the weaker
    /// term.
    fn weaker_sources(&self, v2: Entity) -> Vec<Entity> {
        let mut out = Vec::new();
        match v2 {
            Entity::User(u) => out.push(Entity::User(u)),
            Entity::Role(_) => {
                for u in self.universe.users() {
                    if self.reach.reach_entity(Entity::User(u), v2) {
                        out.push(Entity::User(u));
                    }
                }
                for r in self.universe.roles() {
                    if self.reach.reach_entity(Entity::Role(r), v2) {
                        out.push(Entity::Role(r));
                    }
                }
            }
        }
        out
    }

    /// Roles `b4` with `b3 →φ b4` — candidate targets for rule (2).
    fn reachable_roles(&self, b3: Entity) -> Vec<RoleId> {
        match b3 {
            Entity::Role(r) => {
                let mut out: Vec<RoleId> = self
                    .reach
                    .roles_reachable(Entity::Role(r))
                    .iter()
                    .map(|i| RoleId(i as u32))
                    .collect();
                if !out.contains(&r) {
                    out.push(r); // reflexivity for roles outside the index
                }
                out
            }
            // A user target never occurs in well-formed edges.
            Entity::User(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::PrivilegeOrder;
    use crate::policy::PolicyBuilder;

    /// Example 6's policy: roles r1, r2 with (r2, ¤(r1,r2)) ∈ PA.
    fn example6() -> (Universe, Policy, PrivId) {
        let mut b = PolicyBuilder::new().declare_role("r1").declare_role("r2");
        let (r1, r2) = {
            let u = b.universe_mut();
            (u.find_role("r1").unwrap(), u.find_role("r2").unwrap())
        };
        let g = b.universe_mut().grant_role_role(r1, r2);
        b = b.assign_priv("r2", g);
        let (uni, policy) = b.finish();
        (uni, policy, g)
    }

    #[test]
    fn example6_chain_is_generated() {
        let (mut uni, policy, g) = example6();
        let r1 = uni.find_role("r1").unwrap();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: 4,
                ..EnumerationConfig::default()
            },
        );
        // ¤(r1, ¤(r1,r2)), ¤(r1, ¤(r1, ¤(r1,r2))) … must all be present.
        let q1 = uni.grant_role_priv(r1, g);
        let q2 = uni.grant_role_priv(r1, q1);
        let q3 = uni.grant_role_priv(r1, q2);
        for q in [g, q1, q2, q3] {
            assert!(set.privileges.contains(&q), "missing {q:?}");
        }
    }

    #[test]
    fn example6_frontier_never_dries_up() {
        // The per-depth frontier stays non-empty at every depth — the
        // observable form of “infinitely many weaker privileges”.
        let (mut uni, policy, g) = example6();
        for max_depth in [2u32, 4, 6, 8] {
            let set = enumerate_weaker(
                &mut uni,
                &policy,
                g,
                EnumerationConfig {
                    max_depth,
                    ..EnumerationConfig::default()
                },
            );
            for d in 1..=max_depth as usize {
                assert!(
                    set.frontier_by_depth[d] > 0,
                    "depth {d} empty at bound {max_depth}"
                );
            }
        }
    }

    #[test]
    fn strict_mode_generates_finite_set_on_example6() {
        let (mut uni, policy, g) = example6();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: 6,
                mode: OrderingMode::Strict,
                ..EnumerationConfig::default()
            },
        );
        // Strict rule (2) only: sources reaching r1 are {r1, r2}; targets
        // reachable from r2 are {r2}. No deeper terms.
        for &q in &set.privileges {
            assert!(uni.depth(q) <= 1, "strict must not nest: {q:?}");
        }
    }

    #[test]
    fn generation_is_sound_wrt_decision_procedure() {
        let (mut uni, policy, g) = example6();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: 3,
                ..EnumerationConfig::default()
            },
        );
        let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
        for &q in &set.privileges {
            assert!(
                order.is_weaker(g, q),
                "generated but not weaker: {}",
                crate::display::priv_to_string(&uni, q, crate::display::Notation::Ascii)
            );
        }
    }

    #[test]
    fn generation_is_complete_up_to_depth_two() {
        // Exhaustively build every well-formed term of depth ≤ 2 over the
        // Example 6 vocabulary and compare membership against is_weaker.
        let (mut uni, policy, g) = example6();
        let r1 = uni.find_role("r1").unwrap();
        let r2 = uni.find_role("r2").unwrap();
        let roles = [r1, r2];
        let mut depth1 = Vec::new();
        for &a in &roles {
            for &b in &roles {
                depth1.push(uni.grant_role_role(a, b));
                depth1.push(uni.revoke_role_role(a, b));
            }
        }
        let mut all = depth1.clone();
        for &r in &roles {
            for &t in &depth1 {
                all.push(uni.grant_role_priv(r, t));
                all.push(uni.revoke_role_priv(r, t));
            }
        }
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: 2,
                ..EnumerationConfig::default()
            },
        );
        let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
        for &q in &all {
            let generated = set.privileges.contains(&q);
            let weaker = order.is_weaker(g, q);
            assert_eq!(
                generated,
                weaker,
                "mismatch on {}",
                crate::display::priv_to_string(&uni, q, crate::display::Notation::Ascii)
            );
        }
    }

    #[test]
    fn truncation_fires_on_low_caps() {
        let (mut uni, policy, g) = example6();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: 10,
                max_results: 5,
                mode: OrderingMode::Extended,
            },
        );
        assert!(set.truncated);
        assert!(set.privileges.len() <= 20, "cap respected (with slack)");
    }

    #[test]
    fn remark2_depth_is_longest_chain() {
        let (uni, policy) = PolicyBuilder::new()
            .inherit("a", "b")
            .inherit("b", "c")
            .inherit("c", "d")
            .finish();
        assert_eq!(remark2_depth(&uni, &policy), 4);
        let (uni2, policy2) = PolicyBuilder::new().declare_role("only").finish();
        assert_eq!(remark2_depth(&uni2, &policy2), 1);
    }

    #[test]
    fn perm_privileges_have_singleton_weaker_sets() {
        let (mut uni, policy, _) = example6();
        let perm = uni.perm("read", "t1");
        let q = uni.priv_perm(perm);
        let set = enumerate_weaker(&mut uni, &policy, q, EnumerationConfig::default());
        assert_eq!(set.privileges, vec![q]);
    }

    #[test]
    fn revocation_enumeration_under_extension() {
        let (uni_police, policy) = PolicyBuilder::new()
            .assign("joe", "staff")
            .inherit("staff", "nurse")
            .finish();
        let mut uni = uni_police;
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let p = uni.revoke_user_role(joe, staff);
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            p,
            EnumerationConfig {
                mode: OrderingMode::ExtendedWithRevocation,
                ..EnumerationConfig::default()
            },
        );
        let expected = uni.revoke_user_role(joe, nurse);
        assert!(set.privileges.contains(&expected));
        // Paper modes: singleton.
        let set_paper = enumerate_weaker(&mut uni, &policy, p, EnumerationConfig::default());
        assert_eq!(set_paper.privileges, vec![p]);
    }
}
