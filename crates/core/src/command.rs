//! Administrative commands and command queues (Definition 4).
//!
//! A command `cmd(u, a, v, v′)` names an actor `u`, a connective
//! `a ∈ {¤, ♦}` and an edge `(v, v′)`; a command queue is a list of
//! commands executed left to right by the reference monitor.

use crate::ids::UserId;
use crate::universe::Edge;

/// The connective of a command: add or remove the edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CommandKind {
    /// `¤` — add the edge (`φ ∪ (v, v′)`).
    Grant,
    /// `♦` — remove the edge (`φ \ (v, v′)`).
    Revoke,
}

/// An administrative command `cmd(u, a, v, v′)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Command {
    /// The user issuing the command.
    pub actor: UserId,
    /// Add or remove.
    pub kind: CommandKind,
    /// The edge `(v, v′)` being added or removed.
    pub edge: Edge,
}

impl Command {
    /// `cmd(actor, ¤, v, v′)`.
    pub fn grant(actor: UserId, edge: Edge) -> Self {
        Command {
            actor,
            kind: CommandKind::Grant,
            edge,
        }
    }

    /// `cmd(actor, ♦, v, v′)`.
    pub fn revoke(actor: UserId, edge: Edge) -> Self {
        Command {
            actor,
            kind: CommandKind::Revoke,
            edge,
        }
    }
}

/// A queue of commands, executed front to back.
///
/// `CommandQueue` is a thin wrapper over `Vec<Command>` so queues can carry
/// queue-level operations (actor signatures, prefix iteration) without
/// leaking representation.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct CommandQueue {
    commands: Vec<Command>,
}

impl CommandQueue {
    /// The empty queue `ε`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a queue from commands, front first.
    pub fn from_commands(commands: Vec<Command>) -> Self {
        CommandQueue { commands }
    }

    /// Appends a command to the back.
    pub fn push(&mut self, cmd: Command) {
        self.commands.push(cmd);
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` iff the queue is `ε`.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// The commands, front first.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// The actor of each command in order — Definition 7 matches queues by
    /// this signature (`n`-th commands “both of the form `cmd(u, ., .)`”).
    pub fn actor_signature(&self) -> Vec<UserId> {
        self.commands.iter().map(|c| c.actor).collect()
    }

    /// `true` iff the two queues have the same length and the same actor at
    /// every position.
    pub fn same_actors(&self, other: &CommandQueue) -> bool {
        self.len() == other.len()
            && self
                .commands
                .iter()
                .zip(other.commands.iter())
                .all(|(a, b)| a.actor == b.actor)
    }

    /// Iterates the commands front first.
    pub fn iter(&self) -> impl Iterator<Item = &Command> {
        self.commands.iter()
    }
}

impl FromIterator<Command> for CommandQueue {
    fn from_iter<I: IntoIterator<Item = Command>>(iter: I) -> Self {
        CommandQueue {
            commands: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for CommandQueue {
    type Item = Command;
    type IntoIter = std::vec::IntoIter<Command>;

    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RoleId;

    fn edge(u: u32, r: u32) -> Edge {
        Edge::UserRole(UserId(u), RoleId(r))
    }

    #[test]
    fn constructors_set_kind() {
        let g = Command::grant(UserId(0), edge(1, 2));
        let r = Command::revoke(UserId(0), edge(1, 2));
        assert_eq!(g.kind, CommandKind::Grant);
        assert_eq!(r.kind, CommandKind::Revoke);
        assert_ne!(g, r);
    }

    #[test]
    fn actor_signature_and_matching() {
        let q1: CommandQueue = [
            Command::grant(UserId(1), edge(1, 2)),
            Command::revoke(UserId(2), edge(3, 4)),
        ]
        .into_iter()
        .collect();
        let q2: CommandQueue = [
            Command::revoke(UserId(1), edge(9, 9)),
            Command::grant(UserId(2), edge(0, 0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(q1.actor_signature(), vec![UserId(1), UserId(2)]);
        assert!(q1.same_actors(&q2), "same actors, different commands");
        let q3: CommandQueue = [Command::grant(UserId(1), edge(1, 2))]
            .into_iter()
            .collect();
        assert!(!q1.same_actors(&q3), "length differs");
        let q4: CommandQueue = [
            Command::grant(UserId(2), edge(1, 2)),
            Command::grant(UserId(1), edge(3, 4)),
        ]
        .into_iter()
        .collect();
        assert!(!q1.same_actors(&q4), "actors permuted");
    }

    #[test]
    fn queue_basics() {
        let mut q = CommandQueue::new();
        assert!(q.is_empty());
        q.push(Command::grant(UserId(0), edge(0, 0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().count(), 1);
        let v: Vec<Command> = q.clone().into_iter().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(CommandQueue::from_commands(v), q);
    }
}
