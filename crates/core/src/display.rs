//! Name-aware rendering of privileges, edges, commands and policies.
//!
//! Ids are meaningless without the [`Universe`], so rendering goes through
//! free functions taking one. Two notations are supported: the ASCII
//! notation used by the policy language (`grant(bob, staff)`) and the
//! paper's connective notation (`¤(bob, staff)` / `♦(bob, staff)`).

use std::fmt::Write as _;

use crate::command::{Command, CommandKind};
use crate::ids::{Perm, PrivId};
use crate::policy::Policy;
use crate::universe::{Edge, PrivTerm, Universe};

/// Which surface syntax to render connectives in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Notation {
    /// `grant(..)` / `revoke(..)` — matches `adminref-lang`.
    #[default]
    Ascii,
    /// `¤(..)` / `♦(..)` — matches the paper.
    Paper,
}

/// Renders a user privilege, e.g. `(read, t1)`.
pub fn perm_to_string(universe: &Universe, perm: Perm) -> String {
    format!(
        "({}, {})",
        universe.action_name(perm.action),
        universe.object_name(perm.object)
    )
}

/// Renders the two endpoints of an edge, without a connective.
fn edge_body(universe: &Universe, edge: Edge, notation: Notation, out: &mut String) {
    match edge {
        Edge::UserRole(u, r) => {
            let _ = write!(out, "{}, {}", universe.user_name(u), universe.role_name(r));
        }
        Edge::RoleRole(r, s) => {
            let _ = write!(out, "{}, {}", universe.role_name(r), universe.role_name(s));
        }
        Edge::RolePriv(r, p) => {
            let _ = write!(out, "{}, ", universe.role_name(r));
            write_priv(universe, p, notation, out);
        }
    }
}

fn write_priv(universe: &Universe, p: PrivId, notation: Notation, out: &mut String) {
    match universe.term(p) {
        PrivTerm::Perm(q) => {
            let _ = write!(out, "{}", perm_to_string(universe, q));
        }
        PrivTerm::Grant(e) => {
            out.push_str(match notation {
                Notation::Ascii => "grant(",
                Notation::Paper => "¤(",
            });
            edge_body(universe, e, notation, out);
            out.push(')');
        }
        PrivTerm::Revoke(e) => {
            out.push_str(match notation {
                Notation::Ascii => "revoke(",
                Notation::Paper => "♦(",
            });
            edge_body(universe, e, notation, out);
            out.push(')');
        }
    }
}

/// Renders a privilege term.
pub fn priv_to_string(universe: &Universe, p: PrivId, notation: Notation) -> String {
    let mut out = String::new();
    write_priv(universe, p, notation, &mut out);
    out
}

/// Renders an edge as `source -> target`.
pub fn edge_to_string(universe: &Universe, edge: Edge, notation: Notation) -> String {
    let mut out = String::new();
    match edge {
        Edge::UserRole(u, r) => {
            let _ = write!(
                out,
                "{} -> {}",
                universe.user_name(u),
                universe.role_name(r)
            );
        }
        Edge::RoleRole(r, s) => {
            let _ = write!(
                out,
                "{} -> {}",
                universe.role_name(r),
                universe.role_name(s)
            );
        }
        Edge::RolePriv(r, p) => {
            let _ = write!(out, "{} -> ", universe.role_name(r));
            write_priv(universe, p, notation, &mut out);
        }
    }
    out
}

/// Renders a command as `cmd(actor, grant|revoke, v, v')`.
pub fn command_to_string(universe: &Universe, cmd: &Command, notation: Notation) -> String {
    let connective = match (cmd.kind, notation) {
        (CommandKind::Grant, Notation::Ascii) => "grant",
        (CommandKind::Revoke, Notation::Ascii) => "revoke",
        (CommandKind::Grant, Notation::Paper) => "¤",
        (CommandKind::Revoke, Notation::Paper) => "♦",
    };
    let mut body = String::new();
    edge_body(universe, cmd.edge, notation, &mut body);
    format!(
        "cmd({}, {}, {})",
        universe.user_name(cmd.actor),
        connective,
        body
    )
}

/// Renders a whole policy, one edge per line, deterministically ordered.
pub fn policy_to_string(universe: &Universe, policy: &Policy, notation: Notation) -> String {
    let mut out = String::new();
    for (u, r) in policy.ua() {
        let _ = writeln!(
            out,
            "assign {} -> {};",
            universe.user_name(u),
            universe.role_name(r)
        );
    }
    for (r, s) in policy.rh() {
        let _ = writeln!(
            out,
            "inherit {} -> {};",
            universe.role_name(r),
            universe.role_name(s)
        );
    }
    for (r, p) in policy.pa() {
        let _ = writeln!(
            out,
            "perm {} -> {};",
            universe.role_name(r),
            priv_to_string(universe, p, notation)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    fn setup() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("bob", "staff")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "read", "t2")
            .finish()
    }

    #[test]
    fn perm_rendering() {
        let (mut uni, _) = setup();
        let perm = uni.perm("read", "t2");
        assert_eq!(perm_to_string(&uni, perm), "(read, t2)");
    }

    #[test]
    fn nested_priv_ascii() {
        let (mut uni, _) = setup();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.role("hr");
        let inner = uni.grant_user_role(bob, staff);
        let outer = uni.grant_role_priv(hr, inner);
        assert_eq!(
            priv_to_string(&uni, outer, Notation::Ascii),
            "grant(hr, grant(bob, staff))"
        );
    }

    #[test]
    fn nested_priv_paper_notation() {
        let (mut uni, _) = setup();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let inner = uni.grant_user_role(bob, staff);
        let rev = uni.revoke_role_priv(staff, inner);
        assert_eq!(
            priv_to_string(&uni, rev, Notation::Paper),
            "♦(staff, ¤(bob, staff))"
        );
    }

    #[test]
    fn command_rendering() {
        let (mut uni, _) = setup();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let jane = uni.user("jane");
        let cmd = Command::grant(jane, Edge::UserRole(bob, staff));
        assert_eq!(
            command_to_string(&uni, &cmd, Notation::Ascii),
            "cmd(jane, grant, bob, staff)"
        );
        assert_eq!(
            command_to_string(&uni, &cmd, Notation::Paper),
            "cmd(jane, ¤, bob, staff)"
        );
    }

    #[test]
    fn policy_rendering_is_deterministic() {
        let (uni, policy) = setup();
        let a = policy_to_string(&uni, &policy, Notation::Ascii);
        let b = policy_to_string(&uni, &policy, Notation::Ascii);
        assert_eq!(a, b);
        assert!(a.contains("assign bob -> staff;"));
        assert!(a.contains("inherit staff -> dbusr2;"));
        assert!(a.contains("perm dbusr2 -> (read, t2);"));
    }

    #[test]
    fn edge_rendering() {
        let (uni, _) = setup();
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        assert_eq!(
            edge_to_string(&uni, Edge::RoleRole(staff, dbusr2), Notation::Ascii),
            "staff -> dbusr2"
        );
    }
}
