//! RBAC sessions (§2 of the paper, following the ANSI standard).
//!
//! A user starts a session and activates roles in it; the reference monitor
//! allows activating `r` iff `u →φ r`, and the session's privileges are
//! those reachable from its *active* roles only. Sessions are the standard's
//! least-privilege mechanism — the paper's Example 4 turns on the fact that
//! users may fail to use it (Bob activating `staff` instead of `dbusr2`),
//! which the privilege ordering lets Jane fix for him.

use std::collections::BTreeSet;

use crate::ids::{Entity, Node, Perm, RoleId, UserId};
use crate::policy::Policy;
use crate::reach::reaches;
use crate::universe::Universe;

/// Why a session operation was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionError {
    /// `u →φ r` does not hold: the user may not activate the role.
    ActivationDenied {
        /// The session's user.
        user: UserId,
        /// The role that was refused.
        role: RoleId,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::ActivationDenied { user, role } => {
                write!(f, "user {user:?} may not activate role {role:?}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// One user session with a set of activated roles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Session {
    user: UserId,
    active: BTreeSet<RoleId>,
}

impl Session {
    /// Starts a session for `user` with no active roles (and therefore no
    /// privileges).
    pub fn new(user: UserId) -> Self {
        Session {
            user,
            active: BTreeSet::new(),
        }
    }

    /// The session's user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Currently active roles.
    pub fn active_roles(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.active.iter().copied()
    }

    /// Activates `role` if the policy allows it (`u →φ r`).
    pub fn activate(&mut self, policy: &Policy, role: RoleId) -> Result<(), SessionError> {
        if reaches(policy, Node::User(self.user), Node::Role(role)) {
            self.active.insert(role);
            Ok(())
        } else {
            Err(SessionError::ActivationDenied {
                user: self.user,
                role,
            })
        }
    }

    /// Deactivates `role`; returns `true` if it was active.
    pub fn deactivate(&mut self, role: RoleId) -> bool {
        self.active.remove(&role)
    }

    /// `true` iff the session's active roles reach the user privilege
    /// `perm`.
    pub fn check_access(&self, universe: &mut Universe, policy: &Policy, perm: Perm) -> bool {
        let p = universe.priv_perm(perm);
        self.active
            .iter()
            .any(|&r| reaches(policy, Node::Role(r), Node::Priv(p)))
    }

    /// All user privileges the session currently grants.
    pub fn session_perms(&self, universe: &Universe, policy: &Policy) -> Vec<Perm> {
        let idx = crate::reach::ReachIndex::build(universe, policy);
        let mut out: Vec<Perm> = Vec::new();
        for &r in &self.active {
            out.extend(idx.perms_reachable(universe, policy, Entity::Role(r)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    /// Example 1: Diana activates nurse (reads t1, t2) or staff (also
    /// writes t3).
    fn figure1() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .inherit("staff", "dbusr2")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr1", "read", "t2")
            .permit("dbusr2", "write", "t3")
            .finish()
    }

    #[test]
    fn example1_nurse_session() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, nurse).unwrap();
        let read_t1 = uni.perm("read", "t1");
        let write_t3 = uni.perm("write", "t3");
        assert!(session.check_access(&mut uni, &policy, read_t1));
        assert!(
            !session.check_access(&mut uni, &policy, write_t3),
            "nurse session cannot write t3"
        );
    }

    #[test]
    fn example1_staff_session_can_write() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, staff).unwrap();
        let write_t3 = uni.perm("write", "t3");
        assert!(session.check_access(&mut uni, &policy, write_t3));
    }

    #[test]
    fn activation_requires_reachability() {
        let (mut uni, policy) = figure1();
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let mut session = Session::new(bob);
        assert_eq!(
            session.activate(&policy, staff),
            Err(SessionError::ActivationDenied {
                user: bob,
                role: staff
            })
        );
        assert_eq!(session.active_roles().count(), 0);
    }

    #[test]
    fn inherited_roles_are_activatable() {
        // diana →φ dbusr2 via staff, so she may activate dbusr2 directly —
        // the least-privilege move Example 4 wants Bob to make.
        let (uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, dbusr2).unwrap();
        assert_eq!(session.active_roles().collect::<Vec<_>>(), vec![dbusr2]);
    }

    #[test]
    fn empty_session_has_no_privileges() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let session = Session::new(diana);
        let read_t1 = uni.perm("read", "t1");
        assert!(!session.check_access(&mut uni, &policy, read_t1));
        assert!(session.session_perms(&uni, &policy).is_empty());
    }

    #[test]
    fn deactivation_drops_privileges() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, staff).unwrap();
        let write_t3 = uni.perm("write", "t3");
        assert!(session.check_access(&mut uni, &policy, write_t3));
        assert!(session.deactivate(staff));
        assert!(!session.deactivate(staff));
        assert!(!session.check_access(&mut uni, &policy, write_t3));
    }

    #[test]
    fn session_perms_unions_active_roles() {
        let (uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, nurse).unwrap();
        session.activate(&policy, dbusr2).unwrap();
        // nurse: read t1, read t2; dbusr2: write t3.
        assert_eq!(session.session_perms(&uni, &policy).len(), 3);
    }

    #[test]
    fn policy_change_affects_existing_sessions() {
        // A bare `Session` consults whatever policy it is given: revoking
        // diana's staff role does not deactivate the role here, but
        // re-activation would fail and a fresh session cannot activate
        // it. The monitors close the remaining gap at publish time by
        // force-deactivating roles a batch's revocations severed (see
        // `adminref-monitor`'s session revalidation).
        let (uni, mut policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut session = Session::new(diana);
        session.activate(&policy, staff).unwrap();
        policy.remove_edge(crate::universe::Edge::UserRole(diana, staff));
        let mut fresh = Session::new(diana);
        assert!(fresh.activate(&policy, staff).is_err());
    }
}
