//! Grounded constraint solving for the general (revocation-capable)
//! case: bounded model checking over the edge universe, with a
//! recurrence-diameter check that closes many instances unboundedly.
//!
//! Every policy reachable from the root is a subset of the finite edge
//! universe `E` (root edges ∪ alphabet edges), so a run of length `k`
//! grounds to propositional variables `x[e][t]` ("edge `e` present at
//! time `t`") plus one selector per (command ∪ skip, step). Explicit
//! authorization — "the actor reaches the command's exact privilege
//! vertex" — is unrolled as levelled role-reachability and Tseitin-encoded.
//! The vendored DPLL ([`minisat`]) then answers:
//!
//! * **SAT on the goal query at bound `k`** — a witness queue exists;
//!   it is decoded from the model and *validated by replay* before
//!   being reported.
//! * **UNSAT on the goal query** — the goal is unreachable within `k`
//!   steps (skips make this cover every shorter bound too). That alone
//!   is bounded; the **diameter query** asks whether any simple path of
//!   `k + 1` real (authorized, state-changing) steps leaves the root.
//!   If not, every reachable state is reachable within `k` steps, and
//!   the bounded refutation is in fact *unbounded*:
//!   [`BmcOutcome::Unreachable`] is definitive.
//!
//! Bounds deepen from 1 until an answer lands, the grounding budget is
//! exceeded, or [`BmcConfig::max_bound`] is reached. The encoding
//! models explicit authorization only; ordered-mode instances stay with
//! the bounded search.

use std::collections::HashMap;

use minisat::{Lit, SolveOutcome, Solver};

use crate::command::{Command, CommandKind, CommandQueue};
use crate::ids::{Entity, Node, PrivId};
use crate::policy::Policy;
use crate::reach::{reaches, ReachIndex};
use crate::search::policy_space::EdgeTable;
use crate::universe::{Edge, Universe};

/// Grounding and solving budgets.
#[derive(Clone, Copy, Debug)]
pub struct BmcConfig {
    /// Deepen `k = 1..=max_bound` until an answer or budget stop.
    pub max_bound: usize,
    /// Refuse to ground an instance estimated above this many variables.
    pub max_variables: usize,
    /// DPLL decision budget per solver query.
    pub max_decisions: u64,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            max_bound: 8,
            max_variables: 200_000,
            max_decisions: 2_000_000,
        }
    }
}

/// Why the model checker stopped without an answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inconclusive {
    /// The estimated grounding exceeded [`BmcConfig::max_variables`].
    GroundingTooLarge {
        /// Variables the next bound was estimated to need.
        estimated: u64,
        /// The configured [`BmcConfig::max_variables`] ceiling it broke.
        budget: usize,
    },
    /// A solver query ran out of decisions.
    BudgetExceeded,
    /// Every bound up to [`BmcConfig::max_bound`] was refuted but the
    /// diameter query stayed satisfiable — the space is deeper than the
    /// checker is willing to look.
    BoundExhausted,
}

/// The model checker's verdict.
#[derive(Clone, Debug)]
pub enum BmcOutcome {
    /// A model at some bound decoded to this queue, and the queue
    /// replays to a goal state.
    Reachable {
        /// The validated witness, front first.
        witness: CommandQueue,
    },
    /// Refuted at a bound that the diameter query proved covers the
    /// entire reachable space — unbounded, definitive.
    Unreachable,
    /// No answer within the budgets.
    Inconclusive(Inconclusive),
}

/// Outcome plus accounting for the last grounded instance.
#[derive(Clone, Debug)]
pub struct BmcReport {
    /// The verdict.
    pub outcome: BmcOutcome,
    /// The last bound attempted.
    pub bound: usize,
    /// Variables in the last grounded instance.
    pub variables: usize,
    /// Clauses in the last grounded instance.
    pub clauses: usize,
}

/// One alphabet command the encoding keeps: its edge bit and the
/// `RolePriv` assignment bits that can authorize it.
struct GroundCommand {
    cmd: Command,
    /// Required privilege (explicit mode: the exact term), pre-interned.
    required: PrivId,
    /// Bit of the command's edge in the table.
    edge_bit: usize,
    /// `(role, bit of RolePriv(role, required))` pairs in the universe:
    /// the command is authorized iff the actor reaches one such `role`
    /// while its assignment edge is present.
    auth: Vec<(usize, usize)>,
}

/// The instance shape shared by every query at every bound.
struct Ground {
    table: EdgeTable,
    root_bits: Vec<bool>,
    commands: Vec<GroundCommand>,
    /// Per table bit: is the edge toggled by some kept command? Frozen
    /// (immutable) bits keep their root value at every time step and
    /// ground to constant literals — no per-step variables, no frame
    /// axioms, no contribution to the pairwise-distinct constraints.
    /// Alphabet slicing ([`crate::lint::slice_alphabet`]) makes this
    /// partition bite: sliced-away commands freeze their edges.
    mutable_bits: Vec<bool>,
    /// Role-to-role edges as `(from, to, bit)`.
    rh: Vec<(usize, usize, usize)>,
    /// `UserRole` bits keyed by `(user raw id, role index)`.
    ua: HashMap<(u32, usize), usize>,
    role_count: usize,
}

/// Decides `entity →φ target` under **explicit** authorization by
/// iterative-deepening BMC with a recurrence-diameter closure check.
/// The root policy must already fail the goal (callers come here from
/// an inconclusive search, which checked it).
pub fn check(
    universe: &Universe,
    root: &Policy,
    alphabet: &[(Command, PrivId)],
    entity: Entity,
    target: PrivId,
    config: BmcConfig,
) -> BmcReport {
    let ground = prepare(universe, root, alphabet);
    if ground.commands.is_empty() {
        // No command is ever authorizable: the reachable space is just
        // the root, which fails the goal.
        return BmcReport {
            outcome: BmcOutcome::Unreachable,
            bound: 0,
            variables: 0,
            clauses: 0,
        };
    }
    let mut last = (0usize, 0usize);
    for k in 1..=config.max_bound {
        let estimated = estimate_variables(&ground, k);
        if estimated > config.max_variables as u64 {
            return BmcReport {
                outcome: BmcOutcome::Inconclusive(Inconclusive::GroundingTooLarge {
                    estimated,
                    budget: config.max_variables,
                }),
                bound: k,
                variables: last.0,
                clauses: last.1,
            };
        }
        // Goal query: does some run of ≤ k steps (skips pad shorter
        // runs) reach the goal?
        let mut goal_instance = Instance::new(&ground, k, StepStyle::WithSkip);
        let goal_lit = goal_instance.goal_literal(entity, target, k);
        goal_instance.solver.add_clause(&[goal_lit]);
        last = goal_instance.size();
        match goal_instance.solver.solve_within(config.max_decisions) {
            SolveOutcome::Sat => {
                let witness = goal_instance.decode_witness();
                let outcome = match validate(universe, root, &ground, witness, entity, target) {
                    Some(queue) => BmcOutcome::Reachable { witness: queue },
                    // A model that fails replay would be an encoding bug;
                    // refuse to report it rather than hand out a bogus
                    // witness.
                    None => BmcOutcome::Inconclusive(Inconclusive::BoundExhausted),
                };
                return BmcReport {
                    outcome,
                    bound: k,
                    variables: last.0,
                    clauses: last.1,
                };
            }
            SolveOutcome::BudgetExceeded => {
                return BmcReport {
                    outcome: BmcOutcome::Inconclusive(Inconclusive::BudgetExceeded),
                    bound: k,
                    variables: last.0,
                    clauses: last.1,
                };
            }
            SolveOutcome::Unsat => {}
        }
        // Diameter query: is there a simple path of k + 1 real steps
        // from the root? If not, k steps already cover every reachable
        // state and the refutation above is unbounded.
        let mut diameter_instance = Instance::new(&ground, k + 1, StepStyle::ForcedChange);
        diameter_instance.require_pairwise_distinct_states();
        last = diameter_instance.size();
        match diameter_instance.solver.solve_within(config.max_decisions) {
            SolveOutcome::Unsat => {
                return BmcReport {
                    outcome: BmcOutcome::Unreachable,
                    bound: k,
                    variables: last.0,
                    clauses: last.1,
                };
            }
            SolveOutcome::BudgetExceeded => {
                return BmcReport {
                    outcome: BmcOutcome::Inconclusive(Inconclusive::BudgetExceeded),
                    bound: k,
                    variables: last.0,
                    clauses: last.1,
                };
            }
            SolveOutcome::Sat => {}
        }
    }
    BmcReport {
        outcome: BmcOutcome::Inconclusive(Inconclusive::BoundExhausted),
        bound: config.max_bound,
        variables: last.0,
        clauses: last.1,
    }
}

fn prepare(universe: &Universe, root: &Policy, alphabet: &[(Command, PrivId)]) -> Ground {
    let table = EdgeTable::build(root, alphabet.iter().map(|(c, _)| c));
    let root_bits: Vec<bool> = (0..table.len())
        .map(|b| root.contains_edge(table.edge(b as u32)))
        .collect();
    let role_count = universe.role_count();
    let mut rh = Vec::new();
    let mut ua = HashMap::new();
    let mut assignments: HashMap<PrivId, Vec<(usize, usize)>> = HashMap::new();
    for b in 0..table.len() {
        match table.edge(b as u32) {
            Edge::RoleRole(r, s) => rh.push((r.0 as usize, s.0 as usize, b)),
            Edge::UserRole(u, r) => {
                ua.insert((u.0, r.0 as usize), b);
            }
            Edge::RolePriv(r, p) => assignments.entry(p).or_default().push((r.0 as usize, b)),
        }
    }
    // Keep only commands that can ever be authorized: their exact
    // required vertex must be assignable somewhere in the universe, and
    // the actor needs at least one user→role edge to stand on.
    let commands = alphabet
        .iter()
        .filter_map(|&(cmd, required)| {
            let auth = assignments.get(&required)?.clone();
            let grounded_actor = (0..role_count).any(|r| ua.contains_key(&(cmd.actor.0, r)));
            if !grounded_actor {
                return None;
            }
            let edge_bit = table.bit(cmd.edge).expect("alphabet edge in table") as usize;
            Some(GroundCommand {
                cmd,
                required,
                edge_bit,
                auth,
            })
        })
        .collect::<Vec<GroundCommand>>();
    let mut mutable_bits = vec![false; table.len()];
    for gc in &commands {
        mutable_bits[gc.edge_bit] = true;
    }
    Ground {
        table,
        root_bits,
        commands,
        mutable_bits,
        rh,
        ua,
        role_count,
    }
}

/// Rough variable count for an instance at `steps` transitions — used
/// only to refuse oversized groundings before building them.
fn estimate_variables(ground: &Ground, k: usize) -> u64 {
    let steps = (k + 1) as u64; // diameter query is the larger of the two
                                // Only mutable edges get per-step variables; frozen edges are
                                // constants (see [`Instance::new`]).
    let e = ground.mutable_bits.iter().filter(|&&m| m).count() as u64;
    let c = ground.commands.len() as u64;
    let r = ground.role_count as u64;
    let rh = ground.rh.len() as u64;
    let actors: std::collections::HashSet<u32> =
        ground.commands.iter().map(|g| g.cmd.actor.0).collect();
    let sources = actors.len() as u64 + 1;
    let auth_pairs: u64 = ground.commands.iter().map(|g| g.auth.len() as u64).sum();
    let states = (steps + 1) * e;
    let selectors = steps * (c + 1);
    let reach_rows = sources * steps * r * (r + rh + 1);
    let auth_aux = steps * (auth_pairs + c);
    let distinct_aux = e * (steps + 1) * steps / 2;
    states + selectors + reach_rows + auth_aux + distinct_aux
}

/// How steps are encoded.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StepStyle {
    /// Each step is one authorized command or a skip (frame axiom) —
    /// the goal query, where shorter runs pad with skips.
    WithSkip,
    /// Each step is an authorized command that must actually change its
    /// edge; no skips — the diameter query's "real step" requirement.
    ForcedChange,
}

/// One grounded CNF instance at a fixed number of steps.
struct Instance<'g> {
    ground: &'g Ground,
    solver: Solver,
    /// `x[t][e]`: edge `e` present at time `t`, for `t in 0..=steps`.
    state: Vec<Vec<Lit>>,
    /// `sel[t][c]`: command `c` fires at step `t` (last slot is the
    /// skip under [`StepStyle::WithSkip`]).
    selectors: Vec<Vec<Lit>>,
    steps: usize,
    true_lit: Lit,
    /// Levelled role-reachability rows, per `(source entity, time)`.
    reach_cache: HashMap<(Entity, usize), Vec<Lit>>,
}

impl<'g> Instance<'g> {
    fn new(ground: &'g Ground, steps: usize, style: StepStyle) -> Self {
        let mut solver = Solver::new();
        let true_lit = Lit::positive(solver.new_var());
        solver.add_clause(&[true_lit]);
        // Frozen bits (edges no kept command toggles) hold their root
        // value forever: ground them to constant literals at every time
        // step instead of fresh variables. The Tseitin helpers
        // short-circuit on constants, so downstream authorization and
        // goal encodings shrink with them.
        let state: Vec<Vec<Lit>> = (0..=steps)
            .map(|_| {
                (0..ground.table.len())
                    .map(|e| {
                        if ground.mutable_bits[e] {
                            Lit::positive(solver.new_var())
                        } else if ground.root_bits[e] {
                            true_lit
                        } else {
                            !true_lit
                        }
                    })
                    .collect()
            })
            .collect();
        // Time 0 is the root policy (frozen bits are constants already).
        for (e, &present) in ground.root_bits.iter().enumerate() {
            if !ground.mutable_bits[e] {
                continue;
            }
            let lit = if present { state[0][e] } else { !state[0][e] };
            solver.add_clause(&[lit]);
        }
        let mut instance = Instance {
            ground,
            solver,
            state,
            selectors: Vec::new(),
            steps,
            true_lit,
            reach_cache: HashMap::new(),
        };
        for t in 0..steps {
            instance.encode_step(t, style);
        }
        instance
    }

    fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    fn size(&self) -> (usize, usize) {
        (self.solver.num_vars(), self.solver.num_clauses())
    }

    /// Tseitin `g ⇔ a ∧ b`, with constant short-circuits.
    fn and2(&mut self, a: Lit, b: Lit) -> Lit {
        let f = self.false_lit();
        if a == f || b == f {
            return f;
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit {
            return a;
        }
        let g = Lit::positive(self.solver.new_var());
        self.solver.add_clause(&[!g, a]);
        self.solver.add_clause(&[!g, b]);
        self.solver.add_clause(&[!a, !b, g]);
        g
    }

    /// Tseitin `g ⇔ ⋁ lits`, with constant short-circuits.
    fn or(&mut self, lits: &[Lit]) -> Lit {
        let f = self.false_lit();
        if lits.contains(&self.true_lit) {
            return self.true_lit;
        }
        let live: Vec<Lit> = lits.iter().copied().filter(|&l| l != f).collect();
        match live.len() {
            0 => f,
            1 => live[0],
            _ => {
                let g = Lit::positive(self.solver.new_var());
                let mut forward = vec![!g];
                forward.extend_from_slice(&live);
                self.solver.add_clause(&forward);
                for l in live {
                    self.solver.add_clause(&[!l, g]);
                }
                g
            }
        }
    }

    /// One transition `t → t + 1`: exactly one selector fires; a fired
    /// command must be authorized at `t` and writes its edge at `t + 1`;
    /// all other edges are framed.
    fn encode_step(&mut self, t: usize, style: StepStyle) {
        let command_count = self.ground.commands.len();
        let slot_count = match style {
            StepStyle::WithSkip => command_count + 1,
            StepStyle::ForcedChange => command_count,
        };
        let sels: Vec<Lit> = (0..slot_count)
            .map(|_| Lit::positive(self.solver.new_var()))
            .collect();
        self.solver.add_clause(&sels);
        for i in 0..slot_count {
            for j in (i + 1)..slot_count {
                self.solver.add_clause(&[!sels[i], !sels[j]]);
            }
        }
        for (ci, gc) in self.ground.commands.iter().enumerate() {
            let s = sels[ci];
            let auth = self.authorized_literal(ci, t);
            self.solver.add_clause(&[!s, auth]);
            let (next_effect, forced_pre) = match gc.cmd.kind {
                CommandKind::Grant => (self.state[t + 1][gc.edge_bit], !self.state[t][gc.edge_bit]),
                CommandKind::Revoke => {
                    (!self.state[t + 1][gc.edge_bit], self.state[t][gc.edge_bit])
                }
            };
            self.solver.add_clause(&[!s, next_effect]);
            if style == StepStyle::ForcedChange {
                self.solver.add_clause(&[!s, forced_pre]);
            }
            for e in 0..self.ground.table.len() {
                if e == gc.edge_bit || !self.ground.mutable_bits[e] {
                    continue;
                }
                self.frame_edge(s, t, e);
            }
        }
        if style == StepStyle::WithSkip {
            let skip = sels[command_count];
            for e in 0..self.ground.table.len() {
                if self.ground.mutable_bits[e] {
                    self.frame_edge(skip, t, e);
                }
            }
        }
        self.selectors.push(sels);
    }

    /// `sel ⟹ x[t+1][e] ⇔ x[t][e]`.
    fn frame_edge(&mut self, sel: Lit, t: usize, e: usize) {
        let now = self.state[t][e];
        let next = self.state[t + 1][e];
        self.solver.add_clause(&[!sel, !next, now]);
        self.solver.add_clause(&[!sel, next, !now]);
    }

    /// Literal for "command `ci` is authorized at time `t`": the actor
    /// reaches some role holding the command's exact privilege vertex.
    fn authorized_literal(&mut self, ci: usize, t: usize) -> Lit {
        let actor = self.ground.commands[ci].cmd.actor;
        let reach = self.reach_row(Entity::User(actor), t);
        let auth_pairs = self.ground.commands[ci].auth.clone();
        let mut terms = Vec::with_capacity(auth_pairs.len());
        for (role, pa_bit) in auth_pairs {
            let term = self.and2(reach[role], self.state[t][pa_bit]);
            terms.push(term);
        }
        self.or(&terms)
    }

    /// Levelled role-reachability of `source` at time `t`: one literal
    /// per role, true iff the source reaches that role through the
    /// edges present at `t`. Unrolled to `role_count` levels — enough
    /// for any simple inheritance path.
    fn reach_row(&mut self, source: Entity, t: usize) -> Vec<Lit> {
        if let Some(row) = self.reach_cache.get(&(source, t)) {
            return row.clone();
        }
        let role_count = self.ground.role_count;
        let f = self.false_lit();
        let mut current: Vec<Lit> = (0..role_count)
            .map(|r| match source {
                Entity::User(u) => self
                    .ground
                    .ua
                    .get(&(u.0, r))
                    .map(|&bit| self.state[t][bit])
                    .unwrap_or(f),
                Entity::Role(r0) => {
                    if r0.0 as usize == r {
                        self.true_lit
                    } else {
                        f
                    }
                }
            })
            .collect();
        let rh = self.ground.rh.clone();
        for _level in 0..role_count {
            let mut next = current.clone();
            for r in 0..role_count {
                let mut terms = vec![current[r]];
                for &(from, to, bit) in &rh {
                    if to != r {
                        continue;
                    }
                    let via = self.and2(current[from], self.state[t][bit]);
                    terms.push(via);
                }
                next[r] = self.or(&terms);
            }
            current = next;
        }
        self.reach_cache.insert((source, t), current.clone());
        current
    }

    /// Literal for "`entity` reaches the `target` privilege vertex at
    /// time `t`".
    fn goal_literal(&mut self, entity: Entity, target: PrivId, t: usize) -> Lit {
        let reach = self.reach_row(entity, t);
        let mut terms = Vec::new();
        for b in 0..self.ground.table.len() {
            if let Edge::RolePriv(r, p) = self.ground.table.edge(b as u32) {
                if p == target {
                    let term = self.and2(reach[r.0 as usize], self.state[t][b]);
                    terms.push(term);
                }
            }
        }
        self.or(&terms)
    }

    /// Every pair of states along the path must differ in some edge —
    /// the "simple path" half of the diameter query.
    fn require_pairwise_distinct_states(&mut self) {
        let edge_count = self.ground.table.len();
        for a in 0..=self.steps {
            for b in (a + 1)..=self.steps {
                let mut diffs = Vec::with_capacity(edge_count);
                for e in 0..edge_count {
                    // Frozen edges are equal at all times by construction.
                    if !self.ground.mutable_bits[e] {
                        continue;
                    }
                    let xa = self.state[a][e];
                    let xb = self.state[b][e];
                    // d ⇔ xa ⊕ xb
                    let d = Lit::positive(self.solver.new_var());
                    self.solver.add_clause(&[!d, xa, xb]);
                    self.solver.add_clause(&[!d, !xa, !xb]);
                    self.solver.add_clause(&[d, !xa, xb]);
                    self.solver.add_clause(&[d, xa, !xb]);
                    diffs.push(d);
                }
                self.solver.add_clause(&diffs);
            }
        }
    }

    /// Reads the selected command (if any) at each step out of a model.
    fn decode_witness(&self) -> Vec<(Command, PrivId)> {
        let mut out = Vec::new();
        for sels in &self.selectors {
            for (ci, &sel) in sels.iter().enumerate() {
                if !self.solver.value(sel.var()) {
                    continue;
                }
                if let Some(gc) = self.ground.commands.get(ci) {
                    out.push((gc.cmd, gc.required));
                }
                break;
            }
        }
        out
    }
}

/// Replays a decoded model against the real semantics: every command
/// must be explicitly authorized in its pre-state, and the final policy
/// must satisfy the goal. Commands that do not change the policy are
/// elided from the reported witness.
fn validate(
    universe: &Universe,
    root: &Policy,
    _ground: &Ground,
    steps: Vec<(Command, PrivId)>,
    entity: Entity,
    target: PrivId,
) -> Option<CommandQueue> {
    let mut policy = root.clone();
    let mut queue = CommandQueue::new();
    for (cmd, required) in steps {
        if !reaches(&policy, Node::User(cmd.actor), Node::Priv(required)) {
            return None;
        }
        let changed = match cmd.kind {
            CommandKind::Grant => policy.add_edge(cmd.edge),
            CommandKind::Revoke => policy.remove_edge(cmd.edge),
        };
        if changed {
            queue.push(cmd);
        }
    }
    let idx = ReachIndex::build(universe, &policy);
    idx.reach_priv(entity, target).then_some(queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::safety::{prepare_alphabet, SafetyConfig};
    use crate::transition::{run_pure, AuthMode};

    /// jane∈hr holds ¤(bob, staff) and ♦(bob, staff); staff → dbusr2 →
    /// (write, t3). Non-monotone: the revoke rule is assignable.
    fn revocable_fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let r = b.universe_mut().revoke_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b = b.assign_priv("hr", r);
        b.finish()
    }

    fn prepared(uni: &mut Universe, policy: &Policy) -> Vec<(Command, PrivId)> {
        prepare_alphabet(uni, policy, SafetyConfig::default())
    }

    #[test]
    fn finds_and_validates_a_witness() {
        let (mut uni, policy) = revocable_fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let alphabet = prepared(&mut uni, &policy);
        let report = check(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            BmcConfig::default(),
        );
        let BmcOutcome::Reachable { witness } = &report.outcome else {
            panic!("{:?}", report.outcome);
        };
        let final_policy = run_pure(&mut uni, &policy, witness, AuthMode::Explicit);
        assert!(ReachIndex::build(&uni, &final_policy).reach_priv(Entity::User(bob), target));
    }

    #[test]
    fn closes_unreachable_instances_via_the_diameter_check() {
        let (mut uni, policy) = revocable_fixture();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        let target = uni.priv_perm(never);
        let alphabet = prepared(&mut uni, &policy);
        let report = check(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            BmcConfig::default(),
        );
        assert!(
            matches!(report.outcome, BmcOutcome::Unreachable),
            "{:?}",
            report.outcome
        );
        // The only real transitions toggle (bob, staff): the longest
        // simple path from the root is one step, so the instance closes
        // at the very first bound.
        assert_eq!(report.bound, 1);
    }

    #[test]
    fn empty_executable_alphabet_is_immediately_unreachable() {
        // Nobody holds any administrative privilege.
        let (mut uni, policy) = PolicyBuilder::new()
            .assign("jane", "hr")
            .permit("hr", "read", "files")
            .finish();
        let jane = uni.find_user("jane").unwrap();
        let never = uni.perm("write", "files");
        let target = uni.priv_perm(never);
        let alphabet = prepared(&mut uni, &policy);
        let report = check(
            &uni,
            &policy,
            &alphabet,
            Entity::User(jane),
            target,
            BmcConfig::default(),
        );
        assert!(matches!(report.outcome, BmcOutcome::Unreachable));
        assert_eq!(report.bound, 0);
    }

    #[test]
    fn grounding_budget_is_respected() {
        let (mut uni, policy) = revocable_fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let alphabet = prepared(&mut uni, &policy);
        let report = check(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            BmcConfig {
                max_variables: 1,
                ..BmcConfig::default()
            },
        );
        let BmcOutcome::Inconclusive(Inconclusive::GroundingTooLarge { estimated, budget }) =
            report.outcome
        else {
            panic!("{:?}", report.outcome);
        };
        assert_eq!(budget, 1);
        assert!(estimated > 1, "{estimated}");
    }

    #[test]
    fn frozen_edges_shrink_the_grounding() {
        // The same instance grounded against the full alphabet vs the
        // goal-sliced one: slicing freezes every edge its dropped
        // commands would have toggled, so the CNF estimate drops too.
        // The revocable fixture plus an irrelevant wing (mike can put
        // ann into aud) whose edge the slice freezes.
        let (mut uni, mut policy) = revocable_fixture();
        let (ann, aud, itops) = { (uni.user("ann"), uni.role("aud"), uni.role("itops")) };
        let mike = uni.user("mike");
        policy.add_edge(Edge::UserRole(mike, itops));
        let g2 = uni.grant_user_role(ann, aud);
        policy.add_edge(Edge::RolePriv(itops, g2));
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let alphabet = prepared(&mut uni, &policy);
        let sliced = crate::lint::slice_alphabet(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            AuthMode::Explicit,
        )
        .alphabet;
        assert!(sliced.len() < alphabet.len());
        let full = prepare(&uni, &policy, &alphabet);
        let lean = prepare(&uni, &policy, &sliced);
        let mutable = |g: &Ground| g.mutable_bits.iter().filter(|&&m| m).count();
        assert!(mutable(&lean) < mutable(&full));
        assert!(estimate_variables(&lean, 4) < estimate_variables(&full, 4));
        // And the lean instance still answers correctly.
        let report = check(
            &uni,
            &policy,
            &sliced,
            Entity::User(bob),
            target,
            BmcConfig::default(),
        );
        assert!(matches!(report.outcome, BmcOutcome::Reachable { .. }));
    }
}
