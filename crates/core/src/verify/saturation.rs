//! Least-fixpoint saturation for grow-only instances.
//!
//! When no revoke rule exists anywhere in the edge universe (see
//! [`crate::verify::is_monotone`]), the administrative transition
//! system can only add edges, and authorization is *monotone* in the
//! edge set: both `→φ` reachability and the `⊑φ` derivation rules use
//! edges positively, so a command authorized under a policy stays
//! authorized under every superset. Two consequences:
//!
//! * The union of all reachable policies is itself reachable, and it is
//!   the least fixpoint of "apply every authorized absent grant". The
//!   goal holds in *some* reachable policy iff it holds at the fixpoint
//!   — no frontier, no state cap, no depth bound.
//! * The grants applied on the way to the fixpoint, **in application
//!   order**, form a genuine command queue: each was authorized against
//!   a subset of its replay pre-state. Positive answers therefore come
//!   with a replayable witness (not necessarily shortest).
//!
//! The fixpoint runs in at most `|edge universe|` rounds, each costing
//! one [`ReachIndex`] build plus one alphabet sweep — polynomial, where
//! the bounded search is exponential.

use crate::command::{Command, CommandKind, CommandQueue};
use crate::ids::{Entity, PrivId};
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::safety::ReachabilityAnswer;
use crate::transition::{authorize_with_order, AuthMode};
use crate::universe::{Edge, Universe};

/// One grant applied during saturation, with its justification.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DerivationStep {
    /// The applied grant command.
    pub command: Command,
    /// The privilege vertex that authorized it (equals the required
    /// term under explicit authorization; may be `⊑`-stronger under
    /// ordered authorization).
    pub held: PrivId,
}

/// The saturation result: a definitive answer plus the derivation.
#[derive(Clone, Debug)]
pub struct SaturationOutcome {
    /// `Reachable` (with the derivation's commands as witness) or
    /// `Unreachable` — never `Unknown`.
    pub answer: ReachabilityAnswer,
    /// Fixpoint rounds run (each builds one reachability index).
    pub rounds: usize,
    /// Every grant applied, in order, with its justifying vertex. For a
    /// reachable answer this is exactly the witness; for an unreachable
    /// answer it is the full saturated closure — the complete set of
    /// grants any coalition of actors can ever effect.
    pub derivation: Vec<DerivationStep>,
}

/// Saturates the grow-only instance and decides `entity →φ target`.
///
/// Precondition: the instance is monotone (the caller checked
/// [`crate::verify::is_monotone`]); revoke commands in the alphabet are
/// ignored — on a monotone instance none is ever authorized.
pub fn saturate(
    universe: &Universe,
    root: &Policy,
    alphabet: &[(Command, PrivId)],
    auth_mode: AuthMode,
    entity: Entity,
    target: PrivId,
) -> SaturationOutcome {
    let mut policy = root.clone();
    let mut derivation: Vec<DerivationStep> = Vec::new();
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let idx = ReachIndex::build(universe, &policy);
        if idx.reach_priv(entity, target) {
            return SaturationOutcome {
                answer: reachable(&derivation),
                rounds,
                derivation,
            };
        }
        // Collect every absent grant the current policy authorizes. The
        // index (and order) are for the round-start policy; authorization
        // is monotone in edges, so anything collected here stays
        // authorized while the round's earlier grants are applied.
        let additions = authorized_absent_grants(universe, &policy, &idx, alphabet, auth_mode);
        if additions.is_empty() {
            // Fixpoint: no reachable policy extends this one, and the
            // goal fails here, so it fails everywhere. Definitive.
            return SaturationOutcome {
                answer: ReachabilityAnswer::Unreachable,
                rounds,
                derivation,
            };
        }
        for step in additions {
            if !policy.add_edge(step.command.edge) {
                // Same edge collected under a second actor this round.
                continue;
            }
            derivation.push(step);
            // Split-lemma goal probe against the round-start index: when
            // it fires, the goal holds in the policy just produced, so
            // the derivation so far is a complete witness. (A miss here
            // is caught by the fresh index next round — the probe only
            // under-approximates, it never lies.)
            if goal_via_added_edge(&idx, entity, target, step.command.edge) {
                return SaturationOutcome {
                    answer: reachable(&derivation),
                    rounds,
                    derivation,
                };
            }
        }
    }
}

fn reachable(derivation: &[DerivationStep]) -> ReachabilityAnswer {
    ReachabilityAnswer::Reachable {
        witness: derivation
            .iter()
            .map(|s| s.command)
            .collect::<CommandQueue>(),
    }
}

fn authorized_absent_grants(
    universe: &Universe,
    policy: &Policy,
    idx: &ReachIndex,
    alphabet: &[(Command, PrivId)],
    auth_mode: AuthMode,
) -> Vec<DerivationStep> {
    let order = match auth_mode {
        AuthMode::Explicit => None,
        AuthMode::Ordered(mode) => Some(PrivilegeOrder::with_index(universe, policy, idx, mode)),
    };
    let mut additions = Vec::new();
    for &(cmd, required) in alphabet {
        if cmd.kind != CommandKind::Grant || policy.contains_edge(cmd.edge) {
            continue;
        }
        let held = match &order {
            Some(order) => match authorize_with_order(order, cmd.actor, required) {
                Some(auth) => auth.held,
                None => continue,
            },
            None => {
                if idx.reach_priv(Entity::User(cmd.actor), required) {
                    required
                } else {
                    continue;
                }
            }
        };
        additions.push(DerivationStep { command: cmd, held });
    }
    additions
}

/// The add-edge split lemma (cf. `PolicySearch::goal_on_delta`): adding
/// `(src, tgt)` to a policy that fails `entity →φ target` satisfies it
/// iff `entity →φ src` and `tgt →φ target` already held. Evaluated
/// against the round-start index, the positive direction stays sound
/// mid-round because reachability only grows.
fn goal_via_added_edge(idx: &ReachIndex, entity: Entity, target: PrivId, edge: Edge) -> bool {
    match edge {
        Edge::UserRole(u, r) => {
            entity == Entity::User(u) && idx.reach_priv(Entity::Role(r), target)
        }
        Edge::RoleRole(r, s) => {
            idx.reach_entity(entity, Entity::Role(r)) && idx.reach_priv(Entity::Role(s), target)
        }
        Edge::RolePriv(r, p) => p == target && idx.reach_entity(entity, Entity::Role(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::safety::{prepare_alphabet, SafetyConfig};
    use crate::transition::run_pure;

    /// jane∈hr holds ¤(bob, staff); staff → dbusr2 → (write, t3).
    fn fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn decides_reachable_with_replayable_witness() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let alphabet = prepare_alphabet(&mut uni, &policy, SafetyConfig::default());
        let outcome = saturate(
            &uni,
            &policy,
            &alphabet,
            AuthMode::Explicit,
            Entity::User(bob),
            target,
        );
        let ReachabilityAnswer::Reachable { witness } = &outcome.answer else {
            panic!("{:?}", outcome.answer);
        };
        let final_policy = run_pure(&mut uni, &policy, witness, AuthMode::Explicit);
        assert!(ReachIndex::build(&uni, &final_policy).reach_priv(Entity::User(bob), target));
        assert_eq!(outcome.derivation.len(), witness.len());
    }

    #[test]
    fn decides_unreachable_at_fixpoint() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        let target = uni.priv_perm(never);
        let alphabet = prepare_alphabet(&mut uni, &policy, SafetyConfig::default());
        let outcome = saturate(
            &uni,
            &policy,
            &alphabet,
            AuthMode::Explicit,
            Entity::User(bob),
            target,
        );
        assert!(
            matches!(outcome.answer, ReachabilityAnswer::Unreachable),
            "{:?}",
            outcome.answer
        );
        // The closure applied the one grant HR holds.
        assert_eq!(outcome.derivation.len(), 1);
    }

    #[test]
    fn goal_in_root_is_an_empty_witness() {
        let (mut uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        // Let hr inherit staff: jane reaches (write, t3) in the root.
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let hr = uni.find_role("hr").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut policy = policy;
        policy.add_edge(Edge::RoleRole(hr, staff));
        let alphabet = prepare_alphabet(&mut uni, &policy, SafetyConfig::default());
        let outcome = saturate(
            &uni,
            &policy,
            &alphabet,
            AuthMode::Explicit,
            Entity::User(jane),
            target,
        );
        let ReachabilityAnswer::Reachable { witness } = &outcome.answer else {
            panic!("{:?}", outcome.answer);
        };
        assert!(witness.is_empty());
        assert_eq!(outcome.rounds, 1);
    }
}
