//! Declarative invariant oracle: TLA-style safety invariants as Rust
//! predicate combinators, replayed against recorded traces.
//!
//! The reference monitor records every command it sees together with
//! its decision (see the monitor crate's audit log). This module treats
//! such a trace as a behaviour of the paper's transition system and
//! checks it against a suite of declarative invariants — the same
//! properties `specs/admin_policy.tla` states mathematically:
//!
//! * **NoUnauthorizedAccess** — every executed command was actually
//!   authorized in its pre-state: the actor reached the justifying
//!   privilege vertex, and that vertex authorizes the command's
//!   required privilege under the trace's authorization mode.
//! * **AuditTrailComplete** — the recorded `changed` flags are exactly
//!   what replaying each command against the reconstructed pre-state
//!   yields: the log omits no mutation and invents none.
//! * **SessionRolesAssigned** — every role active in a session is one
//!   its user holds (directly or by inheritance) in the final policy.
//! * **Separation of duty** — for each declared pair of conflicting
//!   roles, no user reaches both (a state invariant, checked on the
//!   initial policy and after every step).
//!
//! Invariants come in three kinds — per-step, per-state, and
//! final-sessions — so a suite can be extended with plain closures; the
//! replay driver reconstructs each intermediate policy and reports
//! every [`Violation`] rather than stopping at the first.

use std::sync::Arc;

use crate::command::Command;
use crate::ids::{Entity, Node, PrivId, RoleId, UserId};
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::{reaches, ReachIndex};
use crate::transition::{apply_edge, authorize_with_order, AuthMode};
use crate::universe::Universe;

/// What the monitor decided about one command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceDecision {
    /// The command was authorized and applied.
    Executed {
        /// The privilege vertex that justified it.
        held: PrivId,
        /// The privilege the command required.
        target: PrivId,
        /// Whether applying it changed the policy.
        changed: bool,
    },
    /// The command was refused (consumed as a no-op).
    Refused,
}

/// One recorded step: a command and the decision it drew.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceStep {
    /// The command presented to the monitor.
    pub command: Command,
    /// The monitor's decision.
    pub decision: TraceDecision,
}

/// A user session: the roles a user chose to activate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionView {
    /// The session's user.
    pub user: UserId,
    /// The activated roles.
    pub active: Vec<RoleId>,
}

/// One invariant failure, located in the trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// The violated invariant's name.
    pub invariant: &'static str,
    /// The step index the violation is attached to (state invariants
    /// report the index of the step that *produced* the state; `0` is
    /// the initial policy).
    pub seq: usize,
    /// Human-readable diagnosis.
    pub message: String,
}

/// A step invariant sees the pre-state policy and the recorded step.
pub type StepCheck =
    Arc<dyn Fn(&Universe, &Policy, &TraceStep) -> Result<(), String> + Send + Sync>;
/// A state invariant sees a reconstructed policy.
pub type StateCheck = Arc<dyn Fn(&Universe, &Policy) -> Result<(), String> + Send + Sync>;
/// A sessions invariant sees the final policy and the open sessions.
pub type SessionsCheck =
    Arc<dyn Fn(&Universe, &Policy, &[SessionView]) -> Result<(), String> + Send + Sync>;

/// When and over what an invariant is evaluated.
#[derive(Clone)]
pub enum InvariantKind {
    /// Checked once per recorded step, against the pre-state.
    Step(StepCheck),
    /// Checked on the initial policy and after every step.
    State(StateCheck),
    /// Checked once, on the final policy and the open sessions.
    Sessions(SessionsCheck),
}

/// A named invariant.
#[derive(Clone)]
pub struct Invariant {
    /// Stable name, reported in violations.
    pub name: &'static str,
    /// The predicate and its evaluation schedule.
    pub kind: InvariantKind,
}

/// `NoUnauthorizedAccess`: an executed command's actor reached the
/// recorded justifying vertex in the pre-state, and that justification
/// is valid under `mode`.
pub fn no_unauthorized_access(mode: AuthMode) -> Invariant {
    Invariant {
        name: "NoUnauthorizedAccess",
        kind: InvariantKind::Step(Arc::new(move |universe, policy, step| {
            let TraceDecision::Executed { held, target, .. } = step.decision else {
                return Ok(());
            };
            let idx = ReachIndex::build(universe, policy);
            let actor = step.command.actor;
            if !idx.reach_priv(Entity::User(actor), held) {
                return Err(format!(
                    "actor {:?} does not reach the recorded justification {:?}",
                    actor, held
                ));
            }
            let justified = match mode {
                AuthMode::Explicit => held == target && idx.reach_priv(Entity::User(actor), target),
                AuthMode::Ordered(ordering) => {
                    let order = PrivilegeOrder::with_index(universe, policy, &idx, ordering);
                    authorize_with_order(&order, actor, target).is_some()
                }
            };
            if justified {
                Ok(())
            } else {
                Err(format!(
                    "held vertex {:?} does not authorize required privilege {:?}",
                    held, target
                ))
            }
        })),
    }
}

/// `AuditTrailComplete`: each executed step's `changed` flag matches a
/// replay of the command against the reconstructed pre-state.
pub fn audit_trail_complete() -> Invariant {
    Invariant {
        name: "AuditTrailComplete",
        kind: InvariantKind::Step(Arc::new(|_universe, policy, step| {
            let TraceDecision::Executed { changed, .. } = step.decision else {
                return Ok(());
            };
            let mut replayed = policy.clone();
            let actually = apply_edge(&mut replayed, &step.command);
            if actually == changed {
                Ok(())
            } else {
                Err(format!(
                    "recorded changed={changed} but replay says {actually} for {:?} on {:?}",
                    step.command.kind, step.command.edge
                ))
            }
        })),
    }
}

/// `SessionRolesAssigned`: every active role of every session is held
/// by its user (directly or via inheritance) in the final policy.
pub fn session_roles_assigned() -> Invariant {
    Invariant {
        name: "SessionRolesAssigned",
        kind: InvariantKind::Sessions(Arc::new(|_universe, policy, sessions| {
            for session in sessions {
                for &role in &session.active {
                    if !reaches(policy, Node::User(session.user), Node::Role(role)) {
                        return Err(format!(
                            "session user {:?} has role {:?} active but no longer holds it",
                            session.user, role
                        ));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// Static separation of duty over the declared conflicting-role pairs:
/// no user may reach both roles of a pair, in any state along the
/// trace.
pub fn separation_of_duty(pairs: Vec<(RoleId, RoleId)>) -> Invariant {
    Invariant {
        name: "SeparationOfDuty",
        kind: InvariantKind::State(Arc::new(move |universe, policy| {
            let idx = ReachIndex::build(universe, policy);
            for user in universe.users() {
                for &(a, b) in &pairs {
                    if idx.reach_entity(Entity::User(user), Entity::Role(a))
                        && idx.reach_entity(Entity::User(user), Entity::Role(b))
                    {
                        return Err(format!(
                            "user {:?} reaches both conflicting roles {:?} and {:?}",
                            user, a, b
                        ));
                    }
                }
            }
            Ok(())
        })),
    }
}

/// An ordered collection of invariants with a replay driver.
#[derive(Clone, Default)]
pub struct InvariantSuite {
    invariants: Vec<Invariant>,
}

impl InvariantSuite {
    /// The empty suite.
    pub fn new() -> Self {
        InvariantSuite::default()
    }

    /// The standard suite for traces recorded under `mode`:
    /// `NoUnauthorizedAccess`, `AuditTrailComplete`,
    /// `SessionRolesAssigned`.
    pub fn standard(mode: AuthMode) -> Self {
        InvariantSuite::new()
            .with(no_unauthorized_access(mode))
            .with(audit_trail_complete())
            .with(session_roles_assigned())
    }

    /// Adds an invariant, builder style.
    pub fn with(mut self, invariant: Invariant) -> Self {
        self.invariants.push(invariant);
        self
    }

    /// Number of invariants in the suite.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Replays `trace` from `root`, evaluating every invariant on its
    /// schedule, and returns all violations (empty means the trace
    /// conforms).
    ///
    /// The policy is reconstructed exactly as the monitor evolved it:
    /// executed steps apply their edge, refused steps are no-ops.
    pub fn replay(
        &self,
        universe: &Universe,
        root: &Policy,
        trace: &[TraceStep],
        sessions: &[SessionView],
    ) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut policy = root.clone();
        self.check_state(universe, &policy, 0, &mut violations);
        for (i, step) in trace.iter().enumerate() {
            let seq = i + 1;
            for invariant in &self.invariants {
                if let InvariantKind::Step(check) = &invariant.kind {
                    if let Err(message) = check(universe, &policy, step) {
                        violations.push(Violation {
                            invariant: invariant.name,
                            seq,
                            message,
                        });
                    }
                }
            }
            if matches!(step.decision, TraceDecision::Executed { .. }) {
                apply_edge(&mut policy, &step.command);
            }
            self.check_state(universe, &policy, seq, &mut violations);
        }
        for invariant in &self.invariants {
            if let InvariantKind::Sessions(check) = &invariant.kind {
                if let Err(message) = check(universe, &policy, sessions) {
                    violations.push(Violation {
                        invariant: invariant.name,
                        seq: trace.len(),
                        message,
                    });
                }
            }
        }
        violations
    }

    fn check_state(
        &self,
        universe: &Universe,
        policy: &Policy,
        seq: usize,
        violations: &mut Vec<Violation>,
    ) {
        for invariant in &self.invariants {
            if let InvariantKind::State(check) = &invariant.kind {
                if let Err(message) = check(universe, policy) {
                    violations.push(Violation {
                        invariant: invariant.name,
                        seq,
                        message,
                    });
                }
            }
        }
    }
}

/// Builds a conforming trace by actually running `queue` through the
/// transition semantics — the honest recorder the oracle's tests and
/// the monitor replicate.
pub fn record_trace(
    universe: &mut Universe,
    root: &Policy,
    commands: &[Command],
    mode: AuthMode,
) -> (Vec<TraceStep>, Policy) {
    let mut policy = root.clone();
    let mut trace = Vec::with_capacity(commands.len());
    for cmd in commands {
        let outcome = crate::transition::step(universe, &mut policy, cmd, mode);
        let decision = match outcome.authorization {
            Some(auth) => TraceDecision::Executed {
                held: auth.held,
                target: auth.target,
                changed: outcome.changed,
            },
            None => TraceDecision::Refused,
        };
        trace.push(TraceStep {
            command: *cmd,
            decision,
        });
    }
    (trace, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    /// jane∈hr holds ¤(bob, staff) and ♦(bob, staff); staff → dbusr2 →
    /// (write, t3).
    fn fixture() -> (Universe, Policy, Vec<Command>) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (jane, bob, staff) = {
            let u = b.universe_mut();
            (
                u.find_user("jane").unwrap(),
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
            )
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let r = b.universe_mut().revoke_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b = b.assign_priv("hr", r);
        let (uni, policy) = b.finish();
        let commands = vec![
            Command::grant(jane, crate::universe::Edge::UserRole(bob, staff)),
            Command::revoke(jane, crate::universe::Edge::UserRole(bob, staff)),
            // bob has no administrative privilege: refused.
            Command::grant(bob, crate::universe::Edge::UserRole(bob, staff)),
        ];
        (uni, policy, commands)
    }

    #[test]
    fn honest_traces_conform() {
        let (mut uni, policy, commands) = fixture();
        let (trace, _final) = record_trace(&mut uni, &policy, &commands, AuthMode::Explicit);
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace[2].decision, TraceDecision::Refused));
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn forged_execution_is_flagged() {
        let (mut uni, policy, commands) = fixture();
        let (mut trace, _final) = record_trace(&mut uni, &policy, &commands, AuthMode::Explicit);
        // Forge: pretend bob's refused command executed, justified by
        // the same vertex jane used.
        let TraceDecision::Executed { held, target, .. } = trace[0].decision else {
            panic!("first step should have executed");
        };
        trace[2].decision = TraceDecision::Executed {
            held,
            target,
            changed: true,
        };
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "NoUnauthorizedAccess"),
            "{violations:?}"
        );
    }

    #[test]
    fn wrong_changed_flag_is_flagged() {
        let (mut uni, policy, commands) = fixture();
        let (mut trace, _final) = record_trace(&mut uni, &policy, &commands, AuthMode::Explicit);
        let TraceDecision::Executed { held, target, .. } = trace[0].decision else {
            panic!("first step should have executed");
        };
        trace[0].decision = TraceDecision::Executed {
            held,
            target,
            changed: false,
        };
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "AuditTrailComplete"),
            "{violations:?}"
        );
    }

    #[test]
    fn stale_session_roles_are_flagged() {
        let (mut uni, policy, commands) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        // Grant then revoke bob's membership; a session still holding
        // staff active is stale.
        let (trace, _final) = record_trace(&mut uni, &policy, &commands[..2], AuthMode::Explicit);
        let sessions = vec![SessionView {
            user: bob,
            active: vec![staff],
        }];
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &sessions);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == "SessionRolesAssigned"),
            "{violations:?}"
        );
    }

    #[test]
    fn separation_of_duty_catches_the_granting_step() {
        let (mut uni, policy, commands) = fixture();
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        // Declare (staff, dbusr2) conflicting: bob reaching staff also
        // reaches dbusr2 by inheritance, so the first grant trips the
        // invariant on the state it produces.
        let (trace, _final) = record_trace(&mut uni, &policy, &commands[..1], AuthMode::Explicit);
        let suite = InvariantSuite::standard(AuthMode::Explicit)
            .with(separation_of_duty(vec![(staff, dbusr2)]));
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        let sod: Vec<_> = violations
            .iter()
            .filter(|v| v.invariant == "SeparationOfDuty")
            .collect();
        assert_eq!(sod.len(), 1, "{violations:?}");
        // Attached to step 1 (the state the grant produced), not the root.
        assert_eq!(sod[0].seq, 1);
    }
}
