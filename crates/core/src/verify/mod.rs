//! Unbounded safety verification: the static-analysis layer above the
//! bounded search in [`crate::safety`].
//!
//! The bounded breadth-first search answers the paper's safety question
//! ("can `entity` ever reach permission `p` under this administrative
//! policy?") exactly when the reachable space fits its bounds, and
//! `Unknown` otherwise. This module turns many of those `Unknown`s into
//! definitive answers with three engines:
//!
//! * [`saturation`] — when the instance is **grow-only** (no revoke rule
//!   anywhere in the edge universe, see [`is_monotone`]), reachability
//!   needs no frontier at all: the set of grantable edges only ever
//!   grows, so the least fixpoint of the add-edge split lemma decides
//!   the question outright, with a replayable derivation as witness.
//! * [`bmc`] — in the general (revocation-capable) explicit-mode case,
//!   the step relation and goal are grounded to CNF over the finite
//!   edge universe and solved with the vendored DPLL
//!   ([`minisat`]); a recurrence-diameter check closes many instances
//!   unboundedly.
//! * [`specs`] — a declarative invariant suite (TLA-style predicates as
//!   Rust combinators) replayed against recorded monitor traces as a
//!   conformance oracle for the executable semantics.
//!
//! [`crate::safety::perm_reachable`] dispatches here automatically when
//! a bounded search comes back inconclusive (see
//! [`SafetyConfig::escalate`]); [`verify_perm_reachable`] is the
//! front door for callers that want the engine report as well — it runs
//! saturation *first* on monotone instances instead of paying for a
//! doomed bounded search.

pub mod bmc;
pub mod saturation;
pub mod specs;

use crate::command::{Command, CommandQueue};
use crate::ids::{Entity, Perm, PrivId};
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::safety::{ReachabilityAnswer, SafetyConfig, Truncation};
use crate::search::{PolicySearch, SearchGoal};
use crate::transition::AuthMode;
use crate::universe::{Edge, PrivTerm, Universe};

/// Is this reachability instance **grow-only**?
///
/// Every reachable policy is a subset of the finite edge universe (root
/// edges plus alphabet command edges). A revoke command executes only
/// when its actor reaches a `♦` privilege *vertex*, and `♦` terms are
/// `⊑`-comparable only to themselves (Strict/Extended ordering) or to
/// other `♦` terms (ExtendedWithRevocation) — a grant vertex never
/// authorizes a revocation in any mode. So if no edge in the universe
/// assigns a revoke term to a role, no revocation is ever authorized in
/// any reachable policy, and the system can only grow. The check is
/// sound in every [`AuthMode`]; nested `♦` terms are covered because
/// the alphabet expands nested privileges into their own edges.
pub fn is_monotone(universe: &Universe, root: &Policy, alphabet: &[(Command, PrivId)]) -> bool {
    let assigns_revocation = |edge: Edge| matches!(edge, Edge::RolePriv(_, p) if matches!(universe.term(p), PrivTerm::Revoke(_)));
    !root.edges().any(assigns_revocation)
        && !alphabet
            .iter()
            .any(|&(cmd, _)| assigns_revocation(cmd.edge))
}

/// Which engine produced a [`VerifyReport`]'s answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineUsed {
    /// The goal already holds in the root policy.
    Immediate,
    /// Monotone saturation (definitive, unbounded).
    Saturation,
    /// The bounded breadth-first search.
    Bfs,
    /// DPLL-grounded bounded model checking.
    Bmc,
}

impl EngineUsed {
    /// A short stable name for output and logs.
    pub fn name(self) -> &'static str {
        match self {
            EngineUsed::Immediate => "immediate",
            EngineUsed::Saturation => "saturation",
            EngineUsed::Bfs => "bfs",
            EngineUsed::Bmc => "bmc",
        }
    }
}

/// The full result of [`verify_perm_reachable`]: the answer plus which
/// engine decided it and the engine's own accounting.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// The reachability answer.
    pub answer: ReachabilityAnswer,
    /// The engine that produced `answer`.
    pub engine: EngineUsed,
    /// Whether the instance was detected as grow-only.
    pub monotone: bool,
    /// Saturation's applied grants with their justifying vertices
    /// (empty unless the saturation engine ran).
    pub derivation: Vec<saturation::DerivationStep>,
    /// The model checker's accounting, when it ran.
    pub bmc: Option<bmc::BmcReport>,
}

/// Answers the safety question with the best engine for the instance,
/// reporting which one ran.
///
/// Monotone instances go straight to saturation — definitive regardless
/// of `config.max_steps` / `config.max_states`. General instances run
/// the bounded search first (shortest witnesses, exhaustive refutation
/// when the space fits the bounds) and escalate an inconclusive answer
/// to the model checker under explicit authorization.
/// `config.escalate` is ignored: this *is* the escalation front door.
pub fn verify_perm_reachable(
    universe: &mut Universe,
    policy: &Policy,
    entity: Entity,
    perm: Perm,
    config: SafetyConfig,
) -> VerifyReport {
    let target = universe.priv_perm(perm);
    let root_index = ReachIndex::build(universe, policy);
    if root_index.reach_priv(entity, target) {
        return VerifyReport {
            answer: ReachabilityAnswer::Reachable {
                witness: CommandQueue::new(),
            },
            engine: EngineUsed::Immediate,
            monotone: false,
            derivation: Vec::new(),
            bmc: None,
        };
    }
    let mut alphabet = crate::safety::prepare_alphabet(universe, policy, config);
    if config.slice {
        // Slicing before the monotonicity check is deliberate: sliced
        // alphabets contain no revoke commands, so instances that were
        // non-monotone only through revoke rules take the saturation
        // fast path below.
        alphabet = crate::lint::slice_alphabet(
            universe,
            policy,
            &alphabet,
            entity,
            target,
            config.auth_mode,
        )
        .alphabet;
    }
    if is_monotone(universe, policy, &alphabet) {
        let outcome = saturation::saturate(
            universe,
            policy,
            &alphabet,
            config.auth_mode,
            entity,
            target,
        );
        return VerifyReport {
            answer: outcome.answer,
            engine: EngineUsed::Saturation,
            monotone: true,
            derivation: outcome.derivation,
            bmc: None,
        };
    }
    let answer = {
        let space = PolicySearch::new(
            universe,
            policy,
            &alphabet,
            config.auth_mode,
            SearchGoal::Priv { entity, target },
            root_index,
        );
        crate::safety::run_engine(&space, config)
    };
    let ReachabilityAnswer::Unknown { truncation } = answer else {
        return VerifyReport {
            answer,
            engine: EngineUsed::Bfs,
            monotone: false,
            derivation: Vec::new(),
            bmc: None,
        };
    };
    if config.auth_mode != AuthMode::Explicit {
        // The CNF grounding encodes explicit authorization only.
        return VerifyReport {
            answer: ReachabilityAnswer::Unknown { truncation },
            engine: EngineUsed::Bfs,
            monotone: false,
            derivation: Vec::new(),
            bmc: None,
        };
    }
    let report = bmc::check(
        universe,
        policy,
        &alphabet,
        entity,
        target,
        bmc::BmcConfig::default(),
    );
    let answer = match &report.outcome {
        bmc::BmcOutcome::Reachable { witness } => ReachabilityAnswer::Reachable {
            witness: witness.clone(),
        },
        bmc::BmcOutcome::Unreachable => ReachabilityAnswer::Unreachable,
        bmc::BmcOutcome::Inconclusive(_) => ReachabilityAnswer::Unknown { truncation },
    };
    VerifyReport {
        answer,
        engine: EngineUsed::Bmc,
        monotone: false,
        derivation: Vec::new(),
        bmc: Some(report),
    }
}

/// Escalation hook for [`crate::safety::perm_reachable`]: called after
/// the bounded search answered `Unknown`, with the already-prepared
/// alphabet. Returns a definitive answer when an unbounded engine
/// closes the instance, and `Unknown { truncation }` otherwise.
pub(crate) fn escalate(
    universe: &Universe,
    root: &Policy,
    alphabet: &[(Command, PrivId)],
    config: SafetyConfig,
    entity: Entity,
    target: PrivId,
    truncation: Truncation,
) -> ReachabilityAnswer {
    if is_monotone(universe, root, alphabet) {
        return saturation::saturate(universe, root, alphabet, config.auth_mode, entity, target)
            .answer;
    }
    if config.auth_mode == AuthMode::Explicit {
        let report = bmc::check(
            universe,
            root,
            alphabet,
            entity,
            target,
            bmc::BmcConfig::default(),
        );
        match report.outcome {
            bmc::BmcOutcome::Reachable { witness } => {
                return ReachabilityAnswer::Reachable { witness };
            }
            bmc::BmcOutcome::Unreachable => return ReachabilityAnswer::Unreachable,
            bmc::BmcOutcome::Inconclusive(_) => {}
        }
    }
    ReachabilityAnswer::Unknown { truncation }
}
