//! The administrative transition function `⇒` (Definition 5) and runs
//! `⇒*`.
//!
//! ```text
//! ⟨cmd(u,¤,v,v′) : cq, φ⟩ ⇒ ⟨cq, φ ∪ (v,v′)⟩  if u →φ r and r →φ ¤(v,v′)
//! ⟨cmd(u,♦,v,v′) : cq, φ⟩ ⇒ ⟨cq, φ \ (v,v′)⟩  if u →φ r and r →φ ♦(v,v′)
//! ⟨cmd(…) : cq, φ⟩       ⇒ ⟨cq, φ⟩            otherwise
//! ```
//!
//! Unauthorized commands are consumed without changing the policy. The
//! authorization premise `u →φ r ∧ r →φ p` is equivalent to `u →φ p`
//! (every path from a user to a privilege vertex passes through a role),
//! which is how it is checked here.
//!
//! Two authorization modes are provided:
//!
//! * [`AuthMode::Explicit`] — Definition 5 literally: the exact privilege
//!   term must be a reachable vertex.
//! * [`AuthMode::Ordered`] — the paper's §4.1 extension: a command is also
//!   authorized when the actor reaches a vertex `w` with `w ⊑φ target`
//!   (Example 4: Jane assigns Bob straight to `dbusr2` because she holds
//!   `¤(bob, staff)`). Theorem 1 is exactly the statement that this is
//!   safe.

use crate::command::{Command, CommandKind, CommandQueue};
use crate::ids::{Node, PrivId, UserId};
use crate::ordering::{OrderingMode, PrivilegeOrder};
use crate::policy::Policy;
use crate::reach::reaches;
use crate::universe::{PrivTerm, Universe};

/// How commands are authorized against the policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AuthMode {
    /// Definition 5: the exact privilege term must be held.
    #[default]
    Explicit,
    /// Held privileges also authorize everything `⊑`-weaker (§4.1).
    Ordered(OrderingMode),
}

/// Why (or that) a command was authorized.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Authorization {
    /// The privilege vertex that justified the command.
    pub held: PrivId,
    /// The privilege the command actually required (equal to `held` under
    /// explicit authorization).
    pub target: PrivId,
}

/// Outcome of one transition step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepOutcome {
    /// `Some` iff the command was authorized (and therefore applied).
    pub authorization: Option<Authorization>,
    /// Whether the edge set actually changed (re-adding an existing edge is
    /// authorized but changes nothing).
    pub changed: bool,
}

impl StepOutcome {
    /// `true` iff the command was authorized.
    pub fn executed(&self) -> bool {
        self.authorization.is_some()
    }
}

/// The privilege term a command requires: `¤(v,v′)` or `♦(v,v′)`.
pub fn required_privilege(universe: &mut Universe, cmd: &Command) -> PrivId {
    match cmd.kind {
        CommandKind::Grant => universe.priv_grant(cmd.edge),
        CommandKind::Revoke => universe.priv_revoke(cmd.edge),
    }
}

/// Explicit authorization (Definition 5): does `actor` reach the exact
/// privilege vertex? Non-mutating — if the term was never interned it
/// cannot be a vertex of any policy.
pub fn authorize_explicit(
    universe: &Universe,
    policy: &Policy,
    cmd: &Command,
) -> Option<Authorization> {
    let term = match cmd.kind {
        CommandKind::Grant => PrivTerm::Grant(cmd.edge),
        CommandKind::Revoke => PrivTerm::Revoke(cmd.edge),
    };
    let target = universe.find_term(term)?;
    if reaches(policy, Node::User(cmd.actor), Node::Priv(target)) {
        Some(Authorization {
            held: target,
            target,
        })
    } else {
        None
    }
}

/// Ordered authorization against a prebuilt [`PrivilegeOrder`] (callers that
/// authorize many commands against one snapshot should reuse the order).
pub fn authorize_with_order(
    order: &PrivilegeOrder<'_>,
    actor: UserId,
    target: PrivId,
) -> Option<Authorization> {
    order
        .authorizing_vertices(actor.into(), target)
        .first()
        .map(|&held| Authorization { held, target })
}

/// Authorizes a command under `mode`, interning the required term when
/// needed.
pub fn authorize(
    universe: &mut Universe,
    policy: &Policy,
    cmd: &Command,
    mode: AuthMode,
) -> Option<Authorization> {
    match mode {
        AuthMode::Explicit => authorize_explicit(universe, policy, cmd),
        AuthMode::Ordered(ordering_mode) => {
            let target = required_privilege(universe, cmd);
            let order = PrivilegeOrder::new(universe, policy, ordering_mode);
            authorize_with_order(&order, cmd.actor, target)
        }
    }
}

/// The mutation half of [`step`]: applies an already-authorized
/// command's edge change to `policy`. Returns whether the edge set
/// actually changed. Callers that need to interpose between the
/// authorization decision and the state change (e.g. a write-ahead log
/// that must persist the decision before applying it) use
/// [`authorize`] + `apply_edge`; everyone else uses [`step`].
pub fn apply_edge(policy: &mut Policy, cmd: &Command) -> bool {
    match cmd.kind {
        CommandKind::Grant => policy.add_edge(cmd.edge),
        CommandKind::Revoke => policy.remove_edge(cmd.edge),
    }
}

/// One step of `⇒`: authorizes and applies `cmd` to `policy`.
pub fn step(
    universe: &mut Universe,
    policy: &mut Policy,
    cmd: &Command,
    mode: AuthMode,
) -> StepOutcome {
    let authorization = authorize(universe, policy, cmd, mode);
    let changed = authorization.is_some() && apply_edge(policy, cmd);
    StepOutcome {
        authorization,
        changed,
    }
}

/// Record of one executed (or refused) command in a run.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// The command.
    pub command: Command,
    /// Its outcome.
    pub outcome: StepOutcome,
}

/// A full run `⟨cq, φ⟩ ⇒* ⟨ε, φ′⟩`, step by step.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// One record per command, in execution order.
    pub steps: Vec<StepRecord>,
}

impl RunTrace {
    /// Number of commands that were authorized.
    pub fn executed_count(&self) -> usize {
        self.steps.iter().filter(|s| s.outcome.executed()).count()
    }

    /// Number of commands that were refused (consumed as no-ops).
    pub fn refused_count(&self) -> usize {
        self.steps.len() - self.executed_count()
    }
}

/// Runs a whole queue against `policy`, mutating it in place.
pub fn run(
    universe: &mut Universe,
    policy: &mut Policy,
    queue: &CommandQueue,
    mode: AuthMode,
) -> RunTrace {
    let mut trace = RunTrace::default();
    for cmd in queue.iter() {
        let outcome = step(universe, policy, cmd, mode);
        trace.steps.push(StepRecord {
            command: *cmd,
            outcome,
        });
    }
    trace
}

/// Runs a queue against a clone of `policy`, returning the final policy
/// `φ′` (the form Definitions 6/7 quantify over).
pub fn run_pure(
    universe: &mut Universe,
    policy: &Policy,
    queue: &CommandQueue,
    mode: AuthMode,
) -> Policy {
    let mut out = policy.clone();
    run(universe, &mut out, queue, mode);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::universe::Edge;

    /// HR (jane) may add bob to staff and add/remove joe from nurse.
    fn admin_policy() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .declare_user("joe")
            .inherit("staff", "nurse")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, joe, staff, nurse) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_user("joe").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_role("nurse").unwrap(),
            )
        };
        let g1 = b.universe_mut().grant_user_role(bob, staff);
        let g2 = b.universe_mut().grant_user_role(joe, nurse);
        let r2 = b.universe_mut().revoke_user_role(joe, nurse);
        b = b
            .assign_priv("hr", g1)
            .assign_priv("hr", g2)
            .assign_priv("hr", r2);
        b.finish()
    }

    #[test]
    fn authorized_grant_applies() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let cmd = Command::grant(jane, Edge::UserRole(bob, staff));
        let out = step(&mut uni, &mut policy, &cmd, AuthMode::Explicit);
        assert!(out.executed());
        assert!(out.changed);
        assert!(policy.contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn unauthorized_command_is_consumed_as_noop() {
        let (mut uni, mut policy) = admin_policy();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let before = policy.clone();
        // Bob holds nothing; he may not add joe to nurse.
        let cmd = Command::grant(bob, Edge::UserRole(joe, nurse));
        let out = step(&mut uni, &mut policy, &cmd, AuthMode::Explicit);
        assert!(!out.executed());
        assert!(!out.changed);
        assert_eq!(policy, before, "third case of Definition 5: φ unchanged");
    }

    #[test]
    fn granting_an_existing_edge_is_authorized_but_unchanged() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let cmd = Command::grant(jane, Edge::UserRole(bob, staff));
        assert!(step(&mut uni, &mut policy, &cmd, AuthMode::Explicit).changed);
        let out = step(&mut uni, &mut policy, &cmd, AuthMode::Explicit);
        assert!(out.executed());
        assert!(!out.changed, "set union: re-adding changes nothing");
    }

    #[test]
    fn revoke_removes_edge() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let grant = Command::grant(jane, Edge::UserRole(joe, nurse));
        let revoke = Command::revoke(jane, Edge::UserRole(joe, nurse));
        step(&mut uni, &mut policy, &grant, AuthMode::Explicit);
        assert!(policy.contains_edge(Edge::UserRole(joe, nurse)));
        let out = step(&mut uni, &mut policy, &revoke, AuthMode::Explicit);
        assert!(out.executed() && out.changed);
        assert!(!policy.contains_edge(Edge::UserRole(joe, nurse)));
    }

    #[test]
    fn revoking_absent_edge_is_authorized_noop() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let revoke = Command::revoke(jane, Edge::UserRole(joe, nurse));
        let out = step(&mut uni, &mut policy, &revoke, AuthMode::Explicit);
        assert!(out.executed());
        assert!(!out.changed);
    }

    #[test]
    fn explicit_mode_refuses_weaker_commands() {
        // Jane holds ¤(bob, staff); explicit mode refuses ¤(bob, dbusr2)
        // even though it is ⊑-weaker (the motivating gap of §4.1).
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let cmd = Command::grant(jane, Edge::UserRole(bob, dbusr2));
        let out = step(&mut uni, &mut policy, &cmd, AuthMode::Explicit);
        assert!(!out.executed());
    }

    #[test]
    fn ordered_mode_authorizes_weaker_commands_example4() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let cmd = Command::grant(jane, Edge::UserRole(bob, dbusr2));
        let mode = AuthMode::Ordered(OrderingMode::Extended);
        let out = step(&mut uni, &mut policy, &cmd, mode);
        assert!(out.executed(), "Jane applies least privilege for Bob");
        let auth = out.authorization.unwrap();
        let held = uni
            .find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
            .unwrap();
        assert_eq!(auth.held, held);
        assert_ne!(auth.held, auth.target);
        assert!(policy.contains_edge(Edge::UserRole(bob, dbusr2)));
        assert!(
            !policy.contains_edge(Edge::UserRole(bob, staff)),
            "bob got dbusr2 only, not staff"
        );
    }

    #[test]
    fn ordered_mode_still_refuses_unrelated_commands() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let staff = uni.find_role("staff").unwrap();
        // Jane may manage joe only w.r.t. nurse; staff is *above* nurse so
        // ¤(joe, staff) is stronger, not weaker.
        let cmd = Command::grant(jane, Edge::UserRole(joe, staff));
        let out = step(
            &mut uni,
            &mut policy,
            &cmd,
            AuthMode::Ordered(OrderingMode::Extended),
        );
        assert!(!out.executed());
        // dbusr2 is below staff but jane's joe-privilege is about nurse,
        // and nurse does not reach dbusr2 here.
        let nurse = uni.find_role("nurse").unwrap();
        assert!(!crate::reach::reaches_entity(
            &policy,
            nurse.into(),
            dbusr2.into()
        ));
        let cmd2 = Command::grant(jane, Edge::UserRole(joe, dbusr2));
        let out2 = step(
            &mut uni,
            &mut policy,
            &cmd2,
            AuthMode::Ordered(OrderingMode::Extended),
        );
        assert!(!out2.executed());
    }

    #[test]
    fn run_traces_every_command() {
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let queue: CommandQueue = [
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::grant(jane, Edge::UserRole(joe, nurse)),
            Command::grant(bob, Edge::UserRole(joe, staff)), // refused
            Command::revoke(jane, Edge::UserRole(joe, nurse)),
        ]
        .into_iter()
        .collect();
        let trace = run(&mut uni, &mut policy, &queue, AuthMode::Explicit);
        assert_eq!(trace.steps.len(), 4);
        assert_eq!(trace.executed_count(), 3);
        assert_eq!(trace.refused_count(), 1);
        assert!(policy.contains_edge(Edge::UserRole(bob, staff)));
        assert!(!policy.contains_edge(Edge::UserRole(joe, nurse)));
    }

    #[test]
    fn run_pure_leaves_input_untouched() {
        let (mut uni, policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let queue: CommandQueue = [Command::grant(jane, Edge::UserRole(bob, staff))]
            .into_iter()
            .collect();
        let snapshot = policy.clone();
        let out = run_pure(&mut uni, &policy, &queue, AuthMode::Explicit);
        assert_eq!(policy, snapshot);
        assert!(out.contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn dynamic_delegation_enables_later_commands() {
        // Commands executed earlier in the queue can authorize later ones:
        // jane gives bob staff; bob may then use privileges staff holds.
        let (mut uni, mut policy) = admin_policy();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        // Give staff an administrative privilege first (by construction).
        let g = uni.grant_user_role(joe, nurse);
        policy.add_edge(Edge::RolePriv(staff, g));
        let queue: CommandQueue = [
            Command::grant(bob, Edge::UserRole(joe, nurse)), // refused: bob has nothing yet
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::grant(bob, Edge::UserRole(joe, nurse)), // now authorized
        ]
        .into_iter()
        .collect();
        let trace = run(&mut uni, &mut policy, &queue, AuthMode::Explicit);
        assert!(!trace.steps[0].outcome.executed());
        assert!(trace.steps[1].outcome.executed());
        assert!(trace.steps[2].outcome.executed());
        assert!(policy.contains_edge(Edge::UserRole(joe, nurse)));
    }
}
