//! A compact-state, parallel breadth-first search engine.
//!
//! The bounded analyses in this workspace — policy reachability
//! ([`crate::safety`]) and ARBAC user-role reachability
//! (`adminref-baselines`) — are exponential searches over state spaces
//! whose states are *subsets of a finite universe*: policies reachable
//! from a root differ from it only on a finite edge alphabet, ARBAC
//! membership states are subsets of the role set. This module exploits
//! that shape:
//!
//! * **Compact canonical states** — a state is a fixed-width bitset over
//!   the finite universe, interned once in a [`StateArena`]; the `seen`
//!   set and parent links hold `u32` indices instead of cloned states.
//! * **Deterministic, depth-synchronous frontier expansion** — each
//!   round expands the whole frontier (optionally fanned out over
//!   scoped worker threads) and then commits candidates sequentially in
//!   frontier order, so the answer — including the witness — is
//!   identical for every `jobs` setting.
//! * **Exact truncation accounting** — [`SearchOutcome::Truncated`] is
//!   reported only when an *unseen* successor was actually cut off by
//!   the state cap or the depth bound, so an exhaustively explored
//!   space is never misreported as inconclusive.
//!
//! A state space implements [`StateSpace`]: it sizes the bitset, writes
//! the root state, and expands one state into labelled successor
//! candidates (each flagged with whether it satisfies the goal). The
//! driver guarantees the *goal invariant*: every state it asks to be
//! expanded was previously reported as not satisfying the goal (the
//! caller must check the root before starting). Expanders can lean on
//! that invariant for O(1) incremental goal evaluation against an index
//! of the parent state.

pub mod arena;
pub mod policy_space;

pub use arena::{words_for, InternOutcome, StateArena};
pub use policy_space::{PolicySearch, SearchGoal};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// Bounds and parallelism for one search.
#[derive(Clone, Copy, Debug)]
pub struct SearchLimits {
    /// Maximum depth (number of labels in a witness) to explore.
    /// `usize::MAX` means unbounded.
    pub max_depth: usize,
    /// Maximum number of distinct states to retain (the root counts).
    pub max_states: usize,
    /// Worker threads for frontier expansion: `1` is fully sequential,
    /// `0` uses [`std::thread::available_parallelism`].
    pub jobs: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_depth: usize::MAX,
            max_states: 50_000,
            jobs: 1,
        }
    }
}

/// Resolves a `jobs` knob: `0` becomes the machine's available
/// parallelism.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Result of a bounded search.
#[derive(Clone, Debug)]
pub enum SearchOutcome<L> {
    /// A goal state was reached; `witness` is the label path from the
    /// root to it, front first.
    Found {
        /// The label path reaching the goal, front first.
        witness: Vec<L>,
    },
    /// The reachable space was exhausted without hitting the goal.
    Exhausted,
    /// At least one unseen successor was cut off by a bound before the
    /// space was exhausted.
    Truncated,
}

/// Counters reported alongside the outcome.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Distinct states retained (root included).
    pub states: usize,
    /// Deepest fully generated frontier depth.
    pub depth: usize,
    /// Whether the state cap dropped at least one unseen successor.
    /// `false` on a truncated outcome means only the depth bound cut
    /// the search off — raising `max_states` alone won't help.
    pub cap_hit: bool,
}

/// Successor candidates emitted by expanding one state.
///
/// Labels, goal flags, and state words live in flat arrays so a large
/// expansion performs three allocations, not one per candidate.
#[derive(Debug)]
pub struct CandidateSet<L> {
    words_per_state: usize,
    words: Vec<u64>,
    meta: Vec<(L, bool)>,
}

impl<L: Copy> CandidateSet<L> {
    fn new(words_per_state: usize) -> Self {
        CandidateSet {
            words_per_state,
            words: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Appends a candidate successor with its label and goal flag.
    pub fn push(&mut self, label: L, goal: bool, words: &[u64]) {
        debug_assert_eq!(words.len(), self.words_per_state);
        self.words.extend_from_slice(words);
        self.meta.push((label, goal));
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// `true` iff no candidate was emitted.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    fn candidate(&self, i: usize) -> (L, bool, &[u64]) {
        let (label, goal) = self.meta[i];
        let start = i * self.words_per_state;
        (
            label,
            goal,
            &self.words[start..start + self.words_per_state],
        )
    }

    /// Iterates `(label, goal, words)` in emission order.
    pub fn iter(&self) -> impl Iterator<Item = (L, bool, &[u64])> + '_ {
        (0..self.len()).map(|i| self.candidate(i))
    }
}

/// One searchable state space.
///
/// Implementations must be [`Sync`]: `expand` runs concurrently on
/// worker threads during parallel frontier expansion.
pub trait StateSpace: Sync {
    /// Label attached to each transition (the witness element).
    type Label: Copy + Send;

    /// Number of bits in a state.
    fn state_bits(&self) -> usize;

    /// Writes the root state into `out` (pre-zeroed).
    fn write_root(&self, out: &mut [u64]);

    /// Expands `state`, pushing every *distinct, actually changed*
    /// successor into `out` together with its goal flag.
    ///
    /// The driver guarantees `state` itself does not satisfy the goal
    /// (see the module docs), which licenses incremental goal
    /// evaluation against the parent state.
    fn expand(&self, state: &[u64], out: &mut CandidateSet<Self::Label>);
}

/// Runs the depth-synchronous BFS over `space` under `limits`.
///
/// The root state must already have been checked against the goal by
/// the caller — the engine only evaluates goals on successors.
pub fn search<S: StateSpace>(
    space: &S,
    limits: SearchLimits,
) -> (SearchOutcome<S::Label>, SearchStats) {
    let words_per_state = words_for(space.state_bits());
    let mut arena = StateArena::new(space.state_bits());
    let mut root = vec![0u64; words_per_state];
    space.write_root(&mut root);
    arena.intern(&root);
    // Parent link of state `i` (i ≥ 1) lives at `parents[i - 1]`; the
    // root has none.
    let mut parents: Vec<(u32, S::Label)> = Vec::new();
    let jobs = effective_jobs(limits.jobs);
    let mut frontier: Vec<u32> = vec![0];
    let mut truncated = false;
    let mut cap_hit = false;
    let mut depth = 0usize;

    while !frontier.is_empty() {
        if depth >= limits.max_depth {
            // Depth bound reached: the frontier is not expanded, but a
            // genuinely exhausted space must still answer `Exhausted` —
            // probe whether any unseen successor is being cut off.
            if !truncated {
                truncated = frontier_truncates(space, &arena, &frontier, jobs);
            }
            break;
        }
        let sets = expand_frontier(space, &arena, &frontier, jobs);
        let mut next: Vec<u32> = Vec::new();
        for (pos, set) in sets.iter().enumerate() {
            let parent = frontier[pos];
            for (label, goal, words) in set.iter() {
                if goal {
                    let stats = SearchStats {
                        states: arena.len(),
                        depth: depth + 1,
                        cap_hit,
                    };
                    return (
                        SearchOutcome::Found {
                            witness: rebuild_witness(&parents, parent, label),
                        },
                        stats,
                    );
                }
                match arena.intern_capped(words, limits.max_states) {
                    InternOutcome::Existing(_) => {}
                    InternOutcome::CapHit => {
                        // Cut off by the state cap: drop the state
                        // without recording a parent link, so memory
                        // stays bounded by the cap.
                        truncated = true;
                        cap_hit = true;
                    }
                    InternOutcome::Interned(ix) => {
                        parents.push((parent, label));
                        next.push(ix);
                    }
                }
            }
        }
        frontier = next;
        depth += 1;
    }

    let stats = SearchStats {
        states: arena.len(),
        depth,
        cap_hit,
    };
    if truncated {
        (SearchOutcome::Truncated, stats)
    } else {
        (SearchOutcome::Exhausted, stats)
    }
}

/// Expands every frontier state, returning candidate sets in frontier
/// order. With `jobs > 1` the frontier is chunked over scoped worker
/// threads; results are reassembled in order, so commit order — and
/// therefore every answer — is independent of `jobs`.
fn expand_frontier<S: StateSpace>(
    space: &S,
    arena: &StateArena,
    frontier: &[u32],
    jobs: usize,
) -> Vec<CandidateSet<S::Label>> {
    let words_per_state = arena.words_per_state();
    let expand_one = |ix: u32| {
        let mut set = CandidateSet::new(words_per_state);
        space.expand(arena.get(ix), &mut set);
        set
    };
    if jobs <= 1 || frontier.len() <= 1 {
        return frontier.iter().map(|&ix| expand_one(ix)).collect();
    }
    let chunk = frontier.len().div_ceil(jobs);
    type ChunkResults<L> = Vec<(usize, Vec<CandidateSet<L>>)>;
    let collected: Mutex<ChunkResults<S::Label>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for (ci, states) in frontier.chunks(chunk).enumerate() {
            let collected = &collected;
            let expand_one = &expand_one;
            scope.spawn(move |_| {
                let sets: Vec<CandidateSet<S::Label>> =
                    states.iter().map(|&ix| expand_one(ix)).collect();
                collected.lock().push((ci, sets));
            });
        }
    })
    .expect("scoped expansion worker panicked");
    let mut parts = collected.into_inner();
    parts.sort_unstable_by_key(|&(ci, _)| ci);
    parts.into_iter().flat_map(|(_, sets)| sets).collect()
}

/// Does any frontier state have a successor the arena has never seen?
/// Used only at the depth bound, to distinguish a genuinely exhausted
/// search from a truncated one.
fn frontier_truncates<S: StateSpace>(
    space: &S,
    arena: &StateArena,
    frontier: &[u32],
    jobs: usize,
) -> bool {
    let words_per_state = arena.words_per_state();
    let found = AtomicBool::new(false);
    let probe = |ix: u32| {
        if found.load(Ordering::Relaxed) {
            return;
        }
        let mut set = CandidateSet::new(words_per_state);
        space.expand(arena.get(ix), &mut set);
        if set
            .iter()
            .any(|(_, _, words)| arena.lookup(words).is_none())
        {
            found.store(true, Ordering::Relaxed);
        }
    };
    if jobs <= 1 || frontier.len() <= 1 {
        for &ix in frontier {
            probe(ix);
            if found.load(Ordering::Relaxed) {
                break;
            }
        }
    } else {
        let chunk = frontier.len().div_ceil(jobs);
        crossbeam::scope(|scope| {
            for states in frontier.chunks(chunk) {
                let probe = &probe;
                scope.spawn(move |_| {
                    for &ix in states {
                        probe(ix);
                    }
                });
            }
        })
        .expect("scoped truncation probe panicked");
    }
    found.load(Ordering::Relaxed)
}

/// Walks parent links from the state *preceding* the goal hit back to
/// the root, then appends the final label.
fn rebuild_witness<L: Copy>(parents: &[(u32, L)], mut state: u32, last: L) -> Vec<L> {
    let mut out = vec![last];
    while state != 0 {
        let (parent, label) = parents[(state - 1) as usize];
        out.push(label);
        state = parent;
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy space: states are subsets of `0..n`; from any state every
    /// absent element can be added (label = element). Goal: `goal_bit`
    /// becomes present, reachable only after `prereq` is present.
    struct ToySpace {
        n: usize,
        prereq: usize,
        goal_bit: usize,
    }

    impl StateSpace for ToySpace {
        type Label = usize;

        fn state_bits(&self) -> usize {
            self.n
        }

        fn write_root(&self, _out: &mut [u64]) {}

        fn expand(&self, state: &[u64], out: &mut CandidateSet<usize>) {
            use super::arena::{clear_bit, set_bit, test_bit};
            let mut scratch = state.to_vec();
            for b in 0..self.n {
                if test_bit(state, b) {
                    continue;
                }
                if b == self.goal_bit && !test_bit(state, self.prereq) {
                    continue; // locked until the prerequisite is in
                }
                set_bit(&mut scratch, b);
                out.push(b, b == self.goal_bit, &scratch);
                clear_bit(&mut scratch, b);
            }
        }
    }

    #[test]
    fn finds_shortest_witness() {
        let space = ToySpace {
            n: 6,
            prereq: 2,
            goal_bit: 5,
        };
        let (out, stats) = search(&space, SearchLimits::default());
        let SearchOutcome::Found { witness } = out else {
            panic!("{out:?}");
        };
        assert_eq!(witness, vec![2, 5], "prereq first, then the goal");
        assert!(stats.states >= 2);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let space = ToySpace {
            n: 10,
            prereq: 7,
            goal_bit: 9,
        };
        let (seq, _) = search(
            &space,
            SearchLimits {
                jobs: 1,
                ..SearchLimits::default()
            },
        );
        for jobs in [2, 4, 0] {
            let (par, _) = search(
                &space,
                SearchLimits {
                    jobs,
                    ..SearchLimits::default()
                },
            );
            match (&seq, &par) {
                (SearchOutcome::Found { witness: a }, SearchOutcome::Found { witness: b }) => {
                    assert_eq!(a, b, "jobs={jobs}")
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn exhausted_vs_truncated_depth() {
        // Unreachable goal (prereq can never be set: prereq == goal
        // keeps the goal locked forever).
        let space = ToySpace {
            n: 4,
            prereq: 3,
            goal_bit: 3,
        };
        // Full exploration: 3 free bits → depth 3 exhausts the space.
        let (out, stats) = search(
            &space,
            SearchLimits {
                max_depth: 3,
                ..SearchLimits::default()
            },
        );
        assert!(matches!(out, SearchOutcome::Exhausted), "{out:?}");
        assert_eq!(stats.states, 8, "all subsets of the 3 free bits");
        // One level short: unseen successors are cut off.
        let (out, stats) = search(
            &space,
            SearchLimits {
                max_depth: 2,
                ..SearchLimits::default()
            },
        );
        assert!(matches!(out, SearchOutcome::Truncated), "{out:?}");
        assert!(
            !stats.cap_hit,
            "the depth bound, not the state cap, truncated this search"
        );
    }

    #[test]
    fn state_cap_truncates_without_growing() {
        let space = ToySpace {
            n: 8,
            prereq: 7,
            goal_bit: 7,
        };
        let (out, stats) = search(
            &space,
            SearchLimits {
                max_states: 5,
                ..SearchLimits::default()
            },
        );
        assert!(matches!(out, SearchOutcome::Truncated), "{out:?}");
        assert!(stats.states <= 5, "cap respected: {}", stats.states);
        assert!(stats.cap_hit, "the state cap is what truncated: {stats:?}");
    }

    #[test]
    fn depth_zero_with_no_successors_is_exhausted() {
        // n == 0: the root has no successors at all; even max_depth == 0
        // must answer Exhausted, not Truncated.
        let space = ToySpace {
            n: 0,
            prereq: 0,
            goal_bit: 0,
        };
        let (out, _) = search(
            &space,
            SearchLimits {
                max_depth: 0,
                ..SearchLimits::default()
            },
        );
        assert!(matches!(out, SearchOutcome::Exhausted), "{out:?}");
    }
}
