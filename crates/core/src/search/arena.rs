//! Interned compact search states.
//!
//! A search state is a fixed-width bitset (`words_per_state` 64-bit
//! words). The arena stores every distinct state exactly once in a single
//! contiguous pool and hands out dense `u32` indices, so the engine's
//! `seen` set and parent links cost four bytes per state instead of a
//! full policy clone. Deduplication runs through a hash table from a
//! 64-bit fingerprint to the (rarely more than one) pool indices sharing
//! it, with full word-for-word comparison on candidates — no state is
//! ever confused with another.

use std::collections::HashMap;

/// Number of 64-bit words needed to hold `bits` bits (at least one, so a
/// zero-bit space still has a representable — empty — state).
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64).max(1)
}

/// `true` iff `bit` is set in the raw state words.
#[inline]
pub fn test_bit(words: &[u64], bit: usize) -> bool {
    words[bit / 64] & (1 << (bit % 64)) != 0
}

/// Sets `bit` in the raw state words.
#[inline]
pub fn set_bit(words: &mut [u64], bit: usize) {
    words[bit / 64] |= 1 << (bit % 64);
}

/// Clears `bit` in the raw state words.
#[inline]
pub fn clear_bit(words: &mut [u64], bit: usize) {
    words[bit / 64] &= !(1u64 << (bit % 64));
}

/// Flips `bit` in the raw state words.
#[inline]
pub fn toggle_bit(words: &mut [u64], bit: usize) {
    words[bit / 64] ^= 1 << (bit % 64);
}

/// Calls `f` with each set bit of the raw state words, lowest first.
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            f(wi * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// FNV-1a-style fingerprint over whole words, with a final avalanche so
/// single-bit state deltas spread across the table.
fn fingerprint(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Outcome of [`StateArena::intern_capped`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InternOutcome {
    /// The state was already in the arena.
    Existing(u32),
    /// The state was new and has been retained.
    Interned(u32),
    /// The state was new but the retention cap is already full.
    CapHit,
}

/// Deduplicating store of fixed-width bitset states.
#[derive(Debug, Clone)]
pub struct StateArena {
    words_per_state: usize,
    /// All states back to back: state `i` is
    /// `pool[i*words_per_state..(i+1)*words_per_state]`.
    pool: Vec<u64>,
    /// Fingerprint → indices of states with that fingerprint.
    index: HashMap<u64, Vec<u32>>,
}

impl StateArena {
    /// Creates an empty arena for states of `state_bits` bits.
    pub fn new(state_bits: usize) -> Self {
        StateArena {
            words_per_state: words_for(state_bits),
            pool: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Width of one state in 64-bit words.
    pub fn words_per_state(&self) -> usize {
        self.words_per_state
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.pool.len() / self.words_per_state
    }

    /// `true` iff no state has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// The words of state `ix`.
    pub fn get(&self, ix: u32) -> &[u64] {
        let start = ix as usize * self.words_per_state;
        &self.pool[start..start + self.words_per_state]
    }

    /// Index of `words` if it was interned before.
    pub fn lookup(&self, words: &[u64]) -> Option<u32> {
        debug_assert_eq!(words.len(), self.words_per_state);
        let list = self.index.get(&fingerprint(words))?;
        list.iter().copied().find(|&ix| self.get(ix) == words)
    }

    /// Interns `words`, returning its index and whether it was new.
    pub fn intern(&mut self, words: &[u64]) -> (u32, bool) {
        match self.intern_capped(words, usize::MAX) {
            InternOutcome::Existing(ix) => (ix, false),
            InternOutcome::Interned(ix) => (ix, true),
            InternOutcome::CapHit => unreachable!("usize::MAX cap"),
        }
    }

    /// One-shot lookup-or-intern under a retention cap: a single
    /// fingerprint and bucket scan decides whether the state is already
    /// known, newly retained, or dropped because `max_states` states
    /// are already held — the engine's hottest commit-loop operation.
    pub fn intern_capped(&mut self, words: &[u64], max_states: usize) -> InternOutcome {
        debug_assert_eq!(words.len(), self.words_per_state);
        let h = fingerprint(words);
        if let Some(list) = self.index.get(&h) {
            if let Some(ix) = list.iter().copied().find(|&ix| self.get(ix) == words) {
                return InternOutcome::Existing(ix);
            }
        }
        if self.len() >= max_states {
            return InternOutcome::CapHit;
        }
        let ix = u32::try_from(self.len()).expect("state arena overflow");
        self.pool.extend_from_slice(words);
        self.index.entry(h).or_default().push(ix);
        InternOutcome::Interned(ix)
    }

    /// Bytes held by the state pool (diagnostics).
    pub fn pool_bytes(&self) -> usize {
        self.pool.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_sizing() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut words = vec![0u64; 3];
        for bit in [0usize, 63, 64, 130] {
            assert!(!test_bit(&words, bit));
            set_bit(&mut words, bit);
            assert!(test_bit(&words, bit));
        }
        clear_bit(&mut words, 64);
        assert!(!test_bit(&words, 64));
        toggle_bit(&mut words, 64);
        assert!(test_bit(&words, 64));
        toggle_bit(&mut words, 64);
        let mut seen = Vec::new();
        for_each_set_bit(&words, |b| seen.push(b));
        assert_eq!(seen, vec![0, 63, 130]);
    }

    #[test]
    fn intern_deduplicates() {
        let mut a = StateArena::new(100);
        assert!(a.is_empty());
        let s1 = [0b1011u64, 0];
        let s2 = [0b1011u64, 1];
        let (i1, new1) = a.intern(&s1);
        let (i2, new2) = a.intern(&s2);
        let (i3, new3) = a.intern(&s1);
        assert!(new1 && new2 && !new3);
        assert_eq!(i1, i3);
        assert_ne!(i1, i2);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(i2), &s2);
        assert_eq!(a.lookup(&s1), Some(i1));
        assert_eq!(a.lookup(&[7, 7]), None);
    }

    #[test]
    fn single_bit_deltas_are_distinct() {
        // Many states differing in one bit each — the shape the policy
        // search produces — must all intern distinctly.
        let mut a = StateArena::new(256);
        let base = [0u64; 4];
        let (root, _) = a.intern(&base);
        let mut seen = vec![root];
        for bit in 0..256usize {
            let mut s = base;
            s[bit / 64] |= 1 << (bit % 64);
            let (ix, new) = a.intern(&s);
            assert!(new, "bit {bit}");
            seen.push(ix);
        }
        assert_eq!(a.len(), 257);
        // Everything still looks itself up.
        for bit in 0..256usize {
            let mut s = base;
            s[bit / 64] |= 1 << (bit % 64);
            assert_eq!(a.lookup(&s), Some(seen[bit + 1]));
        }
        assert!(a.pool_bytes() >= 257 * 4 * 8);
    }

    #[test]
    fn capped_intern_decides_all_three_cases() {
        let mut a = StateArena::new(64);
        let s1 = [1u64];
        let s2 = [2u64];
        let s3 = [3u64];
        assert_eq!(a.intern_capped(&s1, 2), InternOutcome::Interned(0));
        assert_eq!(a.intern_capped(&s2, 2), InternOutcome::Interned(1));
        assert_eq!(a.intern_capped(&s1, 2), InternOutcome::Existing(0));
        assert_eq!(a.intern_capped(&s3, 2), InternOutcome::CapHit);
        // An already-known state is still reported Existing at the cap.
        assert_eq!(a.intern_capped(&s2, 2), InternOutcome::Existing(1));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn zero_bit_space_has_one_state() {
        let mut a = StateArena::new(0);
        assert_eq!(a.words_per_state(), 1);
        let (ix, new) = a.intern(&[0]);
        assert!(new);
        assert_eq!(a.intern(&[0]), (ix, false));
        assert_eq!(a.len(), 1);
    }
}
