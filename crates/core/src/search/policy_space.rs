//! The administrative-policy state space for the search engine.
//!
//! A policy reachable from the root differs from it only on the finite
//! *edge universe*: the edges of the root plus the edges of the command
//! alphabet (commands only ever toggle their own edge). [`EdgeTable`]
//! assigns each such edge a dense bit, so a whole policy state is a
//! bitset of present edges — the compact canonical encoding interned by
//! the arena.
//!
//! Expansion materialises each frontier policy **once**, builds one
//! [`ReachIndex`] (and, under ordered authorization, one
//! [`PrivilegeOrder`] over it) for the whole alphabet sweep, and then
//! evaluates every command as a single-bit delta:
//!
//! * *authorization* — `O(1)`-ish against the per-state index instead
//!   of a fresh graph walk per command;
//! * *goal evaluation* — incremental against the parent's index. The
//!   engine guarantees every expanded state fails the goal, so for the
//!   monotone "entity reaches privilege vertex" goal a removed edge can
//!   never newly satisfy it, and an added edge `(src, tgt)` satisfies
//!   it iff `entity →φ src ∧ tgt →φ goal` *in the parent* — no index
//!   rebuild per candidate (the seed rebuilt `ReachIndex` from scratch
//!   for every candidate policy).

use crate::command::{Command, CommandKind};
use crate::ids::{Entity, PrivId};
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::transition::{authorize_with_order, AuthMode};
use crate::universe::{Edge, Universe};

use super::arena::{for_each_set_bit, set_bit, test_bit, toggle_bit, words_for};
use super::{CandidateSet, StateSpace};

/// Dense numbering of the finite edge universe of a search.
#[derive(Debug, Clone)]
pub struct EdgeTable {
    /// Sorted, deduplicated edges; the bit of an edge is its position.
    edges: Vec<Edge>,
}

impl EdgeTable {
    /// Builds the table from the root policy and the command alphabet.
    pub fn build<'c>(root: &Policy, commands: impl IntoIterator<Item = &'c Command>) -> Self {
        let mut edges: Vec<Edge> = root.edges().collect();
        edges.extend(commands.into_iter().map(|c| c.edge));
        edges.sort_unstable();
        edges.dedup();
        EdgeTable { edges }
    }

    /// Number of distinct edges (bits per state).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the edge universe is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The bit of `edge`, if it belongs to the universe.
    pub fn bit(&self, edge: Edge) -> Option<u32> {
        self.edges.binary_search(&edge).ok().map(|i| i as u32)
    }

    /// The edge behind a bit.
    pub fn edge(&self, bit: u32) -> Edge {
        self.edges[bit as usize]
    }
}

/// The reachability goal of a search.
pub enum SearchGoal<'g> {
    /// `entity →φ target` for a privilege vertex `target` — the
    /// [`crate::safety::perm_reachable`] shape, evaluated incrementally.
    Priv {
        /// The source entity.
        entity: Entity,
        /// The privilege vertex to reach.
        target: PrivId,
    },
    /// An arbitrary predicate over candidate policies; evaluated by
    /// materialising each changed successor.
    Custom(&'g (dyn Fn(&Universe, &Policy) -> bool + Sync)),
}

/// One alphabet command with its pre-resolved requirements.
#[derive(Debug, Clone, Copy)]
struct PreparedCommand {
    cmd: Command,
    /// The pre-interned privilege term the command requires.
    target: PrivId,
    /// The bit of the command's edge in the [`EdgeTable`].
    bit: u32,
}

/// [`StateSpace`] implementation over administrative policies.
pub struct PolicySearch<'a> {
    universe: &'a Universe,
    table: EdgeTable,
    alphabet: Vec<PreparedCommand>,
    auth_mode: AuthMode,
    goal: SearchGoal<'a>,
    /// The root's encoded state and prebuilt index: the root is both
    /// goal-checked by the caller and expanded once by the engine, so
    /// its index is built a single time and shared.
    root_words: Vec<u64>,
    root_index: ReachIndex,
}

impl<'a> PolicySearch<'a> {
    /// Builds the space. `alphabet` pairs each command with its
    /// required privilege term, pre-interned by the caller (interning
    /// needs `&mut Universe`; the search itself runs on `&Universe` so
    /// it can fan out across threads). `root_index` is the root
    /// policy's reachability index — callers have one anyway from the
    /// root goal check, and the engine reuses it when expanding the
    /// root state instead of rebuilding it.
    pub fn new(
        universe: &'a Universe,
        root: &'a Policy,
        alphabet: &[(Command, PrivId)],
        auth_mode: AuthMode,
        goal: SearchGoal<'a>,
        root_index: ReachIndex,
    ) -> Self {
        root.check_universe(universe);
        let table = EdgeTable::build(root, alphabet.iter().map(|(c, _)| c));
        let alphabet = alphabet
            .iter()
            .map(|&(cmd, target)| PreparedCommand {
                cmd,
                target,
                bit: table.bit(cmd.edge).expect("alphabet edge in table"),
            })
            .collect();
        let mut root_words = vec![0u64; words_for(table.len())];
        for edge in root.edges() {
            let bit = table.bit(edge).expect("root edge in table");
            set_bit(&mut root_words, bit as usize);
        }
        PolicySearch {
            universe,
            table,
            alphabet,
            auth_mode,
            goal,
            root_words,
            root_index,
        }
    }

    /// The prebuilt reachability index of the root policy (also used
    /// when the engine expands the root state).
    pub fn root_index(&self) -> &ReachIndex {
        &self.root_index
    }

    /// The edge universe of this search (diagnostics).
    pub fn edge_table(&self) -> &EdgeTable {
        &self.table
    }

    /// Decodes a state bitset back into a policy.
    pub fn decode(&self, words: &[u64]) -> Policy {
        let mut policy = Policy::new(self.universe);
        for_each_set_bit(words, |b| {
            policy.add_edge(self.table.edge(b as u32));
        });
        policy
    }

    /// Incremental goal check for one candidate delta, using the
    /// *parent's* reachability index. Relies on the engine's invariant
    /// that the parent itself fails the goal.
    fn goal_on_delta(&self, idx: &ReachIndex, parent: &Policy, pc: &PreparedCommand) -> bool {
        match &self.goal {
            SearchGoal::Priv { entity, target } => match pc.cmd.kind {
                // Removing an edge only shrinks reachability; the
                // parent already fails the goal.
                CommandKind::Revoke => false,
                // One added edge (src, tgt): a path in the successor
                // either avoids it (parent fails the goal) or can be
                // split around its first/last use into parent-only
                // segments: entity →φ src and tgt →φ target.
                CommandKind::Grant => match pc.cmd.edge {
                    Edge::UserRole(u, r) => {
                        *entity == Entity::User(u) && idx.reach_priv(Entity::Role(r), *target)
                    }
                    Edge::RoleRole(r, s) => {
                        idx.reach_entity(*entity, Entity::Role(r))
                            && idx.reach_priv(Entity::Role(s), *target)
                    }
                    Edge::RolePriv(r, p) => {
                        p == *target && idx.reach_entity(*entity, Entity::Role(r))
                    }
                },
            },
            SearchGoal::Custom(f) => {
                let mut succ = parent.clone();
                match pc.cmd.kind {
                    CommandKind::Grant => succ.add_edge(pc.cmd.edge),
                    CommandKind::Revoke => succ.remove_edge(pc.cmd.edge),
                };
                f(self.universe, &succ)
            }
        }
    }
}

impl StateSpace for PolicySearch<'_> {
    type Label = Command;

    fn state_bits(&self) -> usize {
        self.table.len()
    }

    fn write_root(&self, out: &mut [u64]) {
        out.copy_from_slice(&self.root_words);
    }

    fn expand(&self, state: &[u64], out: &mut CandidateSet<Command>) {
        let policy = self.decode(state);
        // The root's index is prebuilt (and was already used for the
        // caller's root goal check); every other state gets one fresh
        // index for the whole alphabet sweep.
        let built;
        let idx = if state == self.root_words {
            &self.root_index
        } else {
            built = ReachIndex::build(self.universe, &policy);
            &built
        };
        // Under ordered authorization, one privilege order per state
        // answers every command (the seed rebuilt it per command).
        let order = match self.auth_mode {
            AuthMode::Explicit => None,
            AuthMode::Ordered(mode) => Some(PrivilegeOrder::with_index(
                self.universe,
                &policy,
                idx,
                mode,
            )),
        };
        let mut scratch = state.to_vec();
        for pc in &self.alphabet {
            let present = test_bit(state, pc.bit as usize);
            let changes = match pc.cmd.kind {
                CommandKind::Grant => !present,
                CommandKind::Revoke => present,
            };
            if !changes {
                continue;
            }
            let authorized = match &order {
                Some(order) => authorize_with_order(order, pc.cmd.actor, pc.target).is_some(),
                None => idx.reach_priv(Entity::User(pc.cmd.actor), pc.target),
            };
            if !authorized {
                continue;
            }
            toggle_bit(&mut scratch, pc.bit as usize);
            let goal = self.goal_on_delta(idx, &policy, pc);
            out.push(pc.cmd, goal, &scratch);
            toggle_bit(&mut scratch, pc.bit as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::transition::required_privilege;

    fn space_fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn root_round_trips_through_encoding() {
        let (mut uni, policy) = space_fixture();
        let alphabet = crate::simulation::command_alphabet(&uni, &[&policy]);
        let prepared: Vec<(Command, PrivId)> = alphabet
            .iter()
            .map(|c| (*c, required_privilege(&mut uni, c)))
            .collect();
        let jane = uni.find_user("jane").unwrap();
        let space = PolicySearch::new(
            &uni,
            &policy,
            &prepared,
            AuthMode::Explicit,
            SearchGoal::Priv {
                entity: Entity::User(jane),
                target: PrivId(0),
            },
            ReachIndex::build(&uni, &policy),
        );
        let words = super::super::words_for(space.state_bits());
        let mut root = vec![0u64; words];
        space.write_root(&mut root);
        assert_eq!(space.decode(&root), policy);
    }

    #[test]
    fn expansion_matches_step_semantics() {
        // Every candidate the space emits must be exactly a state the
        // transition function produces (authorized and changed).
        use crate::transition::step;
        let (mut uni, policy) = space_fixture();
        let alphabet = crate::simulation::command_alphabet(&uni, &[&policy]);
        let prepared: Vec<(Command, PrivId)> = alphabet
            .iter()
            .map(|c| (*c, required_privilege(&mut uni, c)))
            .collect();
        // Reference: run step() on a clone for every alphabet command.
        let mut expected: Vec<(Command, Policy)> = Vec::new();
        for cmd in &alphabet {
            let mut next = policy.clone();
            let outcome = step(&mut uni, &mut next, cmd, AuthMode::Explicit);
            if outcome.changed {
                expected.push((*cmd, next));
            }
        }
        let goal = |_: &Universe, _: &Policy| false;
        let space = PolicySearch::new(
            &uni,
            &policy,
            &prepared,
            AuthMode::Explicit,
            SearchGoal::Custom(&goal),
            ReachIndex::build(&uni, &policy),
        );
        let words = super::super::words_for(space.state_bits());
        let mut root = vec![0u64; words];
        space.write_root(&mut root);
        let mut out = CandidateSet::new(words);
        space.expand(&root, &mut out);
        let got: Vec<(Command, Policy)> = out
            .iter()
            .map(|(cmd, _, ws)| (cmd, space.decode(ws)))
            .collect();
        assert_eq!(got.len(), expected.len());
        for ((ca, pa), (cb, pb)) in got.iter().zip(expected.iter()) {
            assert_eq!(ca, cb);
            assert_eq!(pa, pb);
        }
    }
}
