//! String interning.
//!
//! Users, roles, actions and objects are referred to by name in the policy
//! language and by dense `u32` ids everywhere else. The interner owns each
//! distinct string once and hands out stable indexes; lookups in either
//! direction are O(1).

use std::collections::HashMap;

/// Interns strings of one name-kind (e.g. all role names).
///
/// Ids are dense (`0..len`) and never invalidated; the interner is
/// append-only.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// Returns the id for `name` if already interned.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Returns the name for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        assert_ne!(a, b);
        assert_eq!(i.intern("alice"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("nurse");
        assert_eq!(i.resolve(id), "nurse");
        assert_eq!(i.get("nurse"), Some(id));
        assert_eq!(i.get("doctor"), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        for (k, name) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(name), k as u32);
        }
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn empty() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
