//! Immutable, versioned policy snapshots for serving reads.
//!
//! The paper separates rare administrative refinement steps from the
//! high-frequency authorization checks they govern. A [`PolicySnapshot`]
//! is the read-side artifact of that separation: one frozen
//! `(universe, policy)` pair together with the derived [`ReachIndex`],
//! stamped with the epoch that published it. A reference monitor builds
//! one snapshot per *batch* of administrative commands and publishes it
//! atomically; readers then answer `check_access` and analysis queries
//! against the index in O(1)–O(holders) without taking any lock or
//! re-walking the policy graph.
//!
//! Snapshots are plain owned data (`Send + Sync`), so they can sit behind
//! an epoch cell, be shipped to analysis threads, or be diffed across
//! epochs.

use crate::ids::{Entity, Node, Perm, PrivId, RoleId};
use crate::ordering::{OrderingMode, PrivilegeOrder};
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::universe::{PrivTerm, Universe};

/// One frozen policy state plus its derived read indexes.
///
/// Construction cost is one [`ReachIndex::build`] (`O(|R|²/64 + |E|)`);
/// that is paid once per published batch, never per query.
#[derive(Debug, Clone)]
pub struct PolicySnapshot {
    /// The epoch that published this snapshot (0 = initial state).
    pub epoch: u64,
    universe: Universe,
    policy: Policy,
    reach: ReachIndex,
}

impl PolicySnapshot {
    /// Freezes `(universe, policy)` as epoch `epoch`, building the
    /// reachability index.
    pub fn build(universe: Universe, policy: Policy, epoch: u64) -> Self {
        let reach = ReachIndex::build(&universe, &policy);
        PolicySnapshot {
            epoch,
            universe,
            policy,
            reach,
        }
    }

    /// The frozen universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The frozen policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The prebuilt reachability index over this snapshot.
    pub fn reach(&self) -> &ReachIndex {
        &self.reach
    }

    /// `true` iff any of `roles` reaches the user privilege `perm` in
    /// this snapshot — the hot path of a session access check. Terms
    /// never interned in this epoch's universe are unreachable by
    /// definition.
    pub fn roles_reach_perm(&self, roles: impl IntoIterator<Item = RoleId>, perm: Perm) -> bool {
        let Some(p) = self.universe.find_term(PrivTerm::Perm(perm)) else {
            return false;
        };
        roles
            .into_iter()
            .any(|r| self.reach.reach_priv(Entity::Role(r), p))
    }

    /// `true` iff `entity` reaches the privilege vertex `p` (`v →φ p`).
    pub fn entity_reaches_priv(&self, entity: Entity, p: PrivId) -> bool {
        self.reach.reach_priv(entity, p)
    }

    /// General node-to-node reachability against the index.
    pub fn reaches(&self, from: Node, to: Node) -> bool {
        self.reach.reach_node(from, to)
    }

    /// Builds the privilege ordering `⊑φ` for this snapshot on demand,
    /// reusing the snapshot's prebuilt reachability index.
    ///
    /// The order borrows the snapshot (it memoises against the frozen
    /// policy), so derive it once per task, not per query.
    pub fn privilege_order(&self, mode: OrderingMode) -> PrivilegeOrder<'_> {
        PrivilegeOrder::with_index(&self.universe, &self.policy, &self.reach, mode)
    }

    /// Clones out the `(universe, policy)` pair for offline analysis or
    /// as the seed of a writer's working state.
    pub fn clone_state(&self) -> (Universe, Policy) {
        (self.universe.clone(), self.policy.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::reach::reaches;

    fn figure1() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .inherit("staff", "dbusr2")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr2", "write", "t3")
            .finish()
    }

    #[test]
    fn roles_reach_perm_matches_bfs() {
        let (mut uni, policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let write_t3 = uni.perm("write", "t3");
        let p1 = uni.priv_perm(read_t1);
        let snap = PolicySnapshot::build(uni, policy.clone(), 7);
        assert_eq!(snap.epoch, 7);
        assert!(snap.roles_reach_perm([nurse], read_t1));
        assert!(!snap.roles_reach_perm([nurse], write_t3));
        assert!(snap.roles_reach_perm([nurse, staff], write_t3));
        assert!(snap.roles_reach_perm([staff], write_t3));
        assert_eq!(
            snap.reaches(Node::Role(nurse), Node::Priv(p1)),
            reaches(&policy, Node::Role(nurse), Node::Priv(p1))
        );
    }

    #[test]
    fn uninterned_perm_is_unreachable() {
        let (uni, policy) = figure1();
        let mut probe = uni.clone();
        let ghost = probe.perm("erase", "t9");
        let snap = PolicySnapshot::build(uni, policy, 0);
        let staff = snap.universe().find_role("staff").unwrap();
        assert!(!snap.roles_reach_perm([staff], ghost));
    }

    #[test]
    fn snapshot_is_frozen_against_later_mutation() {
        let (uni, policy) = figure1();
        let snap = PolicySnapshot::build(uni.clone(), policy.clone(), 1);
        let (mut u2, mut p2) = snap.clone_state();
        let diana = u2.find_user("diana").unwrap();
        let staff = u2.find_role("staff").unwrap();
        p2.remove_edge(crate::universe::Edge::UserRole(diana, staff));
        // The snapshot still answers from its frozen state.
        let write_t3 = u2.perm("write", "t3");
        assert!(snap.roles_reach_perm([staff], write_t3));
        assert!(snap
            .reach()
            .reach_entity(Entity::User(diana), Entity::Role(staff)));
    }

    #[test]
    fn privilege_order_is_derivable_on_demand() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let held = uni.grant_user_role(diana, staff);
        let snap = PolicySnapshot::build(uni, policy, 0);
        let order = snap.privilege_order(OrderingMode::Extended);
        assert!(order.is_weaker(held, held));
    }
}
