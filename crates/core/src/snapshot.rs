//! Immutable, versioned policy snapshots for serving reads.
//!
//! The paper separates rare administrative refinement steps from the
//! high-frequency authorization checks they govern. A [`PolicySnapshot`]
//! is the read-side artifact of that separation: one frozen
//! `(universe, policy)` pair together with the derived [`ReachIndex`],
//! stamped with the epoch that published it. A reference monitor builds
//! one snapshot per *batch* of administrative commands and publishes it
//! atomically; readers then answer `check_access` and analysis queries
//! against the index in O(1)–O(holders) without taking any lock or
//! re-walking the policy graph.
//!
//! Snapshots are plain owned data (`Send + Sync`), so they can sit behind
//! an epoch cell, be shipped to analysis threads, or be diffed across
//! epochs.
//!
//! # Incremental publication
//!
//! Epochs form a chain, and consecutive epochs differ by exactly the
//! edge deltas of one batch — usually a handful of edges against a
//! policy of thousands. [`PolicySnapshot::next`] exploits that: instead
//! of re-deriving the read index from scratch (`O(|R|²/64 + |E|)` per
//! publish, plus deep clones of the universe and policy), it produces
//! the child snapshot by structural sharing plus targeted updates:
//!
//! * the **universe** `Arc` is reused verbatim unless the batch interned
//!   new names or terms (checked via [`Universe::population_stamp`]);
//! * the **policy** clone is three `Arc` bumps (the writer's next
//!   mutation copies only the relation it touches);
//! * the **index** is delta-maintained by [`ReachIndex::apply_delta`]:
//!   membership and holder rows update in place, and an added role edge
//!   fans its target's closure row out along the reverse-reachability
//!   frontier of its source (the add-edge split lemma — see
//!   [`RoleClosure::add_edge_incremental`](crate::closure::RoleClosure::add_edge_incremental)).
//!   Removal batches recompute only the affected closure rows;
//!   SCC-changing deltas (a new cycle, an intra-cycle removal) and
//!   oversized fan-outs fall back to a full [`ReachIndex::build`].
//!
//! The fallback is also available wholesale as
//! [`PublishMode::FullRebuild`], so differential tests (and the
//! `ADMINREF_PUBLISH_MODE=full` CI lane) can pin every publish to the
//! from-scratch path and assert the two chains are index-identical.

use std::sync::Arc;
use std::sync::OnceLock;

use crate::checksum::{policy_checksum, toggle_edge};
use crate::command::{Command, CommandKind};
use crate::ids::{Entity, Node, Perm, PrivId, RoleId};
use crate::ordering::{OrderingMode, PrivilegeOrder};
use crate::policy::Policy;
use crate::reach::{EdgeDelta, ReachIndex};
use crate::transition::StepOutcome;
use crate::universe::{PrivTerm, Universe};

/// How a monitor derives each published snapshot from its parent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishMode {
    /// Delta-maintain the read index from the parent epoch, falling
    /// back to a rebuild only when the batch's structure demands it
    /// (the default).
    Incremental,
    /// Rebuild the index from scratch on every publish — the
    /// pre-incremental behavior, kept for differential testing.
    FullRebuild,
}

impl PublishMode {
    /// The process-wide default: [`PublishMode::Incremental`], unless
    /// the `ADMINREF_PUBLISH_MODE` environment variable is set to
    /// `full` — the knob CI's forced-full-rebuild lane uses to run the
    /// whole suite over the fallback path.
    pub fn from_env() -> Self {
        static MODE: OnceLock<PublishMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("ADMINREF_PUBLISH_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => PublishMode::FullRebuild,
            _ => PublishMode::Incremental,
        })
    }
}

impl Default for PublishMode {
    fn default() -> Self {
        PublishMode::from_env()
    }
}

/// Which derivation [`PolicySnapshot::next`] actually took — exposed so
/// monitors can count how often the incremental path holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishPath {
    /// The child index was delta-maintained from the parent's.
    Incremental,
    /// The child index was rebuilt from scratch (configured mode, a
    /// structural fallback, or a grown universe).
    FullRebuild,
}

/// Collects the [`EdgeDelta`]s of a batch from its commands and
/// outcomes: exactly the commands whose `changed` flag is set, in
/// execution order — the sequence [`PolicySnapshot::next`] consumes.
pub fn batch_deltas(commands: &[Command], outcomes: &[StepOutcome]) -> Vec<EdgeDelta> {
    commands
        .iter()
        .zip(outcomes)
        .filter(|(_, outcome)| outcome.changed)
        .map(|(cmd, _)| EdgeDelta {
            edge: cmd.edge,
            added: matches!(cmd.kind, CommandKind::Grant),
        })
        .collect()
}

/// One frozen policy state plus its derived read indexes.
///
/// Construction cost is one [`ReachIndex::build`] (`O(|R|²/64 + |E|)`)
/// via [`build`](Self::build), or the batch's delta cost via
/// [`next`](Self::next); either way it is paid once per published
/// batch, never per query.
#[derive(Debug, Clone)]
pub struct PolicySnapshot {
    /// The epoch that published this snapshot (0 = initial state).
    pub epoch: u64,
    universe: Arc<Universe>,
    policy: Policy,
    reach: ReachIndex,
    checksum: u64,
}

impl PolicySnapshot {
    /// Freezes `(universe, policy)` as epoch `epoch`, building the
    /// reachability index from scratch.
    pub fn build(universe: Universe, policy: Policy, epoch: u64) -> Self {
        Self::build_shared(Arc::new(universe), policy, epoch)
    }

    /// [`build`](Self::build) over an already-shared universe.
    pub fn build_shared(universe: Arc<Universe>, policy: Policy, epoch: u64) -> Self {
        let reach = ReachIndex::build(&universe, &policy);
        let checksum = policy_checksum(&policy);
        PolicySnapshot {
            epoch,
            universe,
            policy,
            reach,
            checksum,
        }
    }

    /// Derives the child snapshot of `parent` after a batch.
    ///
    /// `policy` is the post-batch policy, `deltas` the exact sequence of
    /// applied edge changes leading from `parent`'s policy to it (see
    /// [`batch_deltas`]), and `universe` the post-batch universe —
    /// shared with the parent's `Arc` unless the batch interned new
    /// names or terms. Under [`PublishMode::Incremental`] the read
    /// index is delta-maintained (see the module docs for the lemma and
    /// the fallback conditions); under [`PublishMode::FullRebuild`] it
    /// is rebuilt from scratch. The returned [`PublishPath`] reports
    /// which happened; both paths produce index-identical snapshots,
    /// which the suite's differential proptests assert epoch by epoch.
    pub fn next(
        parent: &PolicySnapshot,
        universe: &Universe,
        policy: &Policy,
        deltas: &[EdgeDelta],
        epoch: u64,
        mode: PublishMode,
    ) -> (Self, PublishPath) {
        let shared = if universe.population_stamp() == parent.universe.population_stamp() {
            Arc::clone(&parent.universe)
        } else {
            Arc::new(universe.clone())
        };
        if mode == PublishMode::Incremental {
            if let Some(reach) = parent.reach.apply_delta(&shared, &parent.policy, deltas) {
                // Every applied delta toggles membership of exactly one
                // edge, so XOR-folding the digests is the exact set
                // checksum of the child policy.
                let checksum = deltas
                    .iter()
                    .fold(parent.checksum, |acc, d| toggle_edge(acc, d.edge));
                debug_assert_eq!(checksum, policy_checksum(policy));
                return (
                    PolicySnapshot {
                        epoch,
                        universe: shared,
                        policy: policy.clone(),
                        reach,
                        checksum,
                    },
                    PublishPath::Incremental,
                );
            }
        }
        (
            Self::build_shared(shared, policy.clone(), epoch),
            PublishPath::FullRebuild,
        )
    }

    /// The frozen universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The frozen universe's shared handle (for callers that want to
    /// keep it alive past the snapshot without a deep clone).
    pub fn universe_arc(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The frozen policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The prebuilt reachability index over this snapshot.
    pub fn reach(&self) -> &ReachIndex {
        &self.reach
    }

    /// The canonical state checksum of this snapshot's edge set (see
    /// [`crate::checksum`]). Two snapshots over the same universe with
    /// equal checksums hold the same policy; replication frames carry
    /// this value so replicas can refuse divergence.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// `true` iff any of `roles` reaches the user privilege `perm` in
    /// this snapshot — the hot path of a session access check. Terms
    /// never interned in this epoch's universe are unreachable by
    /// definition.
    pub fn roles_reach_perm(&self, roles: impl IntoIterator<Item = RoleId>, perm: Perm) -> bool {
        let Some(p) = self.universe.find_term(PrivTerm::Perm(perm)) else {
            return false;
        };
        roles
            .into_iter()
            .any(|r| self.reach.reach_priv(Entity::Role(r), p))
    }

    /// `true` iff `entity` reaches the privilege vertex `p` (`v →φ p`).
    pub fn entity_reaches_priv(&self, entity: Entity, p: PrivId) -> bool {
        self.reach.reach_priv(entity, p)
    }

    /// General node-to-node reachability against the index.
    pub fn reaches(&self, from: Node, to: Node) -> bool {
        self.reach.reach_node(from, to)
    }

    /// Builds the privilege ordering `⊑φ` for this snapshot on demand,
    /// reusing the snapshot's prebuilt reachability index.
    ///
    /// The order borrows the snapshot (it memoises against the frozen
    /// policy), so derive it once per task, not per query.
    pub fn privilege_order(&self, mode: OrderingMode) -> PrivilegeOrder<'_> {
        PrivilegeOrder::with_index(&self.universe, &self.policy, &self.reach, mode)
    }

    /// Clones out the `(universe, policy)` pair for offline analysis or
    /// as the seed of a writer's working state.
    pub fn clone_state(&self) -> (Universe, Policy) {
        ((*self.universe).clone(), self.policy.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::reach::reaches;

    fn figure1() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .inherit("staff", "dbusr2")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr2", "write", "t3")
            .finish()
    }

    #[test]
    fn roles_reach_perm_matches_bfs() {
        let (mut uni, policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let write_t3 = uni.perm("write", "t3");
        let p1 = uni.priv_perm(read_t1);
        let snap = PolicySnapshot::build(uni, policy.clone(), 7);
        assert_eq!(snap.epoch, 7);
        assert!(snap.roles_reach_perm([nurse], read_t1));
        assert!(!snap.roles_reach_perm([nurse], write_t3));
        assert!(snap.roles_reach_perm([nurse, staff], write_t3));
        assert!(snap.roles_reach_perm([staff], write_t3));
        assert_eq!(
            snap.reaches(Node::Role(nurse), Node::Priv(p1)),
            reaches(&policy, Node::Role(nurse), Node::Priv(p1))
        );
    }

    #[test]
    fn uninterned_perm_is_unreachable() {
        let (uni, policy) = figure1();
        let mut probe = uni.clone();
        let ghost = probe.perm("erase", "t9");
        let snap = PolicySnapshot::build(uni, policy, 0);
        let staff = snap.universe().find_role("staff").unwrap();
        assert!(!snap.roles_reach_perm([staff], ghost));
    }

    #[test]
    fn snapshot_is_frozen_against_later_mutation() {
        let (uni, policy) = figure1();
        let snap = PolicySnapshot::build(uni.clone(), policy.clone(), 1);
        let (mut u2, mut p2) = snap.clone_state();
        let diana = u2.find_user("diana").unwrap();
        let staff = u2.find_role("staff").unwrap();
        p2.remove_edge(crate::universe::Edge::UserRole(diana, staff));
        // The snapshot still answers from its frozen state.
        let write_t3 = u2.perm("write", "t3");
        assert!(snap.roles_reach_perm([staff], write_t3));
        assert!(snap
            .reach()
            .reach_entity(Entity::User(diana), Entity::Role(staff)));
    }

    #[test]
    fn next_shares_the_universe_and_matches_a_rebuild() {
        let (uni, mut policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let parent = PolicySnapshot::build(uni, policy.clone(), 0);
        let edge = crate::universe::Edge::UserRole(diana, dbusr2);
        assert!(policy.add_edge(edge));
        let deltas = [crate::reach::EdgeDelta { edge, added: true }];
        let (child, path) = PolicySnapshot::next(
            &parent,
            parent.universe(),
            &policy,
            &deltas,
            1,
            PublishMode::Incremental,
        );
        assert_eq!(path, PublishPath::Incremental);
        assert_eq!(child.epoch, 1);
        assert!(
            Arc::ptr_eq(parent.universe_arc(), child.universe_arc()),
            "no names interned: the universe allocation is shared"
        );
        let rebuilt = PolicySnapshot::build(child.universe().clone(), policy.clone(), 1);
        let write_t3 = {
            let mut probe = child.universe().clone();
            probe.perm("write", "t3")
        };
        assert!(child.roles_reach_perm([dbusr2], write_t3));
        for role in child.universe().roles() {
            assert_eq!(
                child.reach().roles_reachable(Entity::Role(role)),
                rebuilt.reach().roles_reachable(Entity::Role(role)),
            );
        }
        // Forced full rebuild produces the same answers.
        let (full, path) = PolicySnapshot::next(
            &parent,
            parent.universe(),
            &policy,
            &deltas,
            1,
            PublishMode::FullRebuild,
        );
        assert_eq!(path, PublishPath::FullRebuild);
        assert!(full.roles_reach_perm([dbusr2], write_t3));
        // Both derivations agree on the state checksum, and it matches a
        // from-scratch recompute over the child policy.
        assert_eq!(child.checksum(), full.checksum());
        assert_eq!(
            child.checksum(),
            crate::checksum::policy_checksum(&policy),
            "incremental checksum must equal the canonical recompute"
        );
        assert_ne!(child.checksum(), parent.checksum());
    }

    #[test]
    fn batch_deltas_keep_only_changing_commands() {
        use crate::command::Command;
        use crate::ids::UserId;
        let (uni, _) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let edge = crate::universe::Edge::UserRole(diana, nurse);
        let commands = [
            Command::grant(UserId(0), edge),
            Command::revoke(UserId(0), edge),
            Command::grant(UserId(0), edge),
        ];
        let outcomes = [
            StepOutcome {
                authorization: None,
                changed: false,
            },
            StepOutcome {
                authorization: None,
                changed: true,
            },
            StepOutcome {
                authorization: None,
                changed: true,
            },
        ];
        let deltas = batch_deltas(&commands, &outcomes);
        assert_eq!(
            deltas,
            vec![
                EdgeDelta { edge, added: false },
                EdgeDelta { edge, added: true },
            ]
        );
    }

    #[test]
    fn privilege_order_is_derivable_on_demand() {
        let (mut uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let held = uni.grant_user_role(diana, staff);
        let snap = PolicySnapshot::build(uni, policy, 0);
        let order = snap.privilege_order(OrderingMode::Extended);
        assert!(order.is_weaker(held, held));
    }
}
