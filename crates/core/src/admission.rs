//! Publish-time admission control: the must/may interval abstraction,
//! batch blast-radius analysis, and the constraint gate.
//!
//! The lint pass (see [`crate::lint`]) is advisory: it reports what *may*
//! go wrong somewhere in the may-add closure `Φ⁺`. This module makes
//! constraints *enforceable at publish time*:
//!
//! 1. **Interval abstraction** ([`Interval`]). Alongside `Φ⁺`
//!    ([`Potential`]) we compute a removal-aware must-closure `Φ⁻`: the
//!    root edges no authorized command sequence can ever revoke. Every
//!    edge then has a static status in {[`EdgeStatus::Frozen`],
//!    [`EdgeStatus::Volatile`], [`EdgeStatus::Unreachable`]}, and for
//!    every policy `φ` reachable from the root,
//!    `Φ⁻ ⊆ edges(φ) ⊆ Φ⁺` — the *interval invariant* (proptested
//!    differentially against the BFS engine in `tests/admission_gate.rs`).
//!
//! 2. **Impact analysis** ([`analyze_batch`]). A candidate batch is
//!    simulated on a scratch clone and the parent state is diffed against
//!    the candidate: which permission verdicts flip, whether the
//!    grow-only (monotone saturation) classification changes, and which
//!    edges change interval status. The monitor layers session
//!    force-deactivation on top (it owns the session table).
//!
//! 3. **Admission gate** ([`admit_batch`]). A durable [`ConstraintSet`]
//!    (separation-of-duty pairs, a lint deny level, frozen-edge
//!    assertions) is evaluated *statically against the candidate state*;
//!    a non-empty findings list refuses the batch before anything is
//!    logged, audited or published, so readers and replicas only ever
//!    observe constraint-clean epochs.
//!
//! ## Why `Φ⁻` is sound
//!
//! A root edge `e` can disappear only through an authorized `revoke e`.
//! Authorization in any reachable `φ` requires an assigned term `w` in
//! `φ` with `♦(e) ⊑φ w` (explicit mode: `w = ♦(e)` itself). Since
//! `edges(φ) ⊆ Φ⁺` and both "assigned" and `⊑` are monotone in the edge
//! set, it suffices to ask the question once against `Φ⁺`: if no
//! `⊑Φ⁺`-compatible revocation term is assigned in `Φ⁺`, none is in any
//! reachable policy, and `e` is permanent — *frozen*.

use std::collections::BTreeSet;
use std::fmt;

use crate::command::Command;
use crate::ids::{Entity, PrivId, RoleId, UserId};
use crate::lint::{lint_policy, Confirmation, Finding, FindingKind, LintConfig, Potential};
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::{EdgeDelta, ReachIndex};
use crate::snapshot::batch_deltas;
use crate::transition::{step, AuthMode, StepOutcome};
use crate::universe::{Edge, PrivTerm, Universe};

pub use crate::lint::Severity;

/// The static status of an edge under the must/may interval.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeStatus {
    /// In `Φ⁻`: present in the root and no authorized command sequence
    /// can revoke it. Every reachable policy contains it.
    Frozen,
    /// In `Φ⁺` but not `Φ⁻`: some reachable policy contains it, some
    /// reachable policy may not.
    Volatile,
    /// Not in `Φ⁺`: no reachable policy contains it.
    Unreachable,
}

impl EdgeStatus {
    /// Stable lowercase name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            EdgeStatus::Frozen => "frozen",
            EdgeStatus::Volatile => "volatile",
            EdgeStatus::Unreachable => "unreachable",
        }
    }
}

/// The must/may interval `[Φ⁻, Φ⁺]` of a root policy.
#[derive(Clone, Debug)]
pub struct Interval {
    /// The may-add closure `Φ⁺` with its reachability index.
    pub potential: Potential,
    /// The must-closure `Φ⁻`: root edges no authorized sequence revokes.
    pub frozen: BTreeSet<Edge>,
}

impl Interval {
    /// Computes the interval of `(universe, root)` under `auth_mode`.
    pub fn from_policy(universe: &Universe, root: &Policy, auth_mode: AuthMode) -> Interval {
        let potential = Potential::from_policy(universe, root, auth_mode);
        Interval::from_potential(universe, root, potential, auth_mode)
    }

    /// Computes `Φ⁻` against an already-built `Φ⁺`.
    ///
    /// Explicit mode asks whether `♦(e)` is interned and assigned in
    /// `Φ⁺`. Ordered mode interns `♦(e)` for every root edge into a
    /// probe clone of the universe (interning is append-only, so every
    /// existing id stays valid) and asks whether any assigned
    /// administrative term is `⊑`-stronger than it under `Φ⁺`.
    pub fn from_potential(
        universe: &Universe,
        root: &Policy,
        potential: Potential,
        auth_mode: AuthMode,
    ) -> Interval {
        let root_edges: Vec<Edge> = root.edges().collect();
        let frozen: BTreeSet<Edge> = match auth_mode {
            AuthMode::Explicit => root_edges
                .into_iter()
                .filter(|&e| {
                    !universe
                        .find_term(PrivTerm::Revoke(e))
                        .is_some_and(|t| potential.is_assigned(t))
                })
                .collect(),
            AuthMode::Ordered(mode) => {
                // Intern every ♦(e) into a probe so ⊑ can be asked even
                // for revocation terms the policy never wrote down.
                let mut probe = universe.clone();
                let revokers: Vec<(Edge, PrivId)> = root_edges
                    .iter()
                    .map(|&e| (e, probe.priv_revoke(e)))
                    .collect();
                let order = PrivilegeOrder::new(&probe, &potential.policy, mode);
                revokers
                    .into_iter()
                    .filter(|&(_, t)| {
                        !potential
                            .assigned
                            .iter()
                            .any(|&w| probe.term(w).is_administrative() && order.is_weaker(w, t))
                    })
                    .map(|(e, _)| e)
                    .collect()
            }
        };
        Interval { potential, frozen }
    }

    /// The static status of `edge` under this interval.
    pub fn status(&self, edge: Edge) -> EdgeStatus {
        if self.frozen.contains(&edge) {
            EdgeStatus::Frozen
        } else if self.potential.policy.contains_edge(edge) {
            EdgeStatus::Volatile
        } else {
            EdgeStatus::Unreachable
        }
    }

    /// Edges in `Φ⁻`.
    pub fn frozen_count(&self) -> usize {
        self.frozen.len()
    }
}

/// A durable set of publish-time constraints.
///
/// Persisted in the [`PolicyStore`](../../adminref_store/index.html) WAL
/// and carried by the replication bootstrap, so a promoted replica keeps
/// enforcing the same set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Separation-of-duty role pairs: no user may reach both roles of a
    /// pair in any published state.
    pub sod_pairs: Vec<(RoleId, RoleId)>,
    /// Refuse batches whose candidate state lints at or above this
    /// severity (`None` disables the lint gate).
    pub deny_level: Option<Severity>,
    /// Edges asserted permanent: each must be present in the candidate
    /// state *and* frozen under its interval.
    pub frozen_edges: Vec<Edge>,
}

impl ConstraintSet {
    /// `true` when no constraint is declared (the gate is a no-op).
    pub fn is_empty(&self) -> bool {
        self.sod_pairs.is_empty() && self.deny_level.is_none() && self.frozen_edges.is_empty()
    }

    /// Sorts and dedups, orienting each SoD pair `(min, max)`, so equal
    /// sets compare and encode identically.
    pub fn normalize(&mut self) {
        for pair in &mut self.sod_pairs {
            if pair.1 < pair.0 {
                *pair = (pair.1, pair.0);
            }
        }
        self.sod_pairs.sort_unstable();
        self.sod_pairs.dedup();
        self.frozen_edges.sort_unstable();
        self.frozen_edges.dedup();
    }

    /// Do all referenced ids fit inside `universe`?
    pub fn ids_in_bounds(&self, universe: &Universe) -> bool {
        let role_ok = |r: RoleId| r.index() < universe.role_count();
        let edge_ok = |e: Edge| match e {
            Edge::UserRole(u, r) => u.index() < universe.user_count() && role_ok(r),
            Edge::RoleRole(a, b) => role_ok(a) && role_ok(b),
            Edge::RolePriv(r, p) => role_ok(r) && p.index() < universe.term_count(),
        };
        self.sod_pairs
            .iter()
            .all(|&(a, b)| role_ok(a) && role_ok(b))
            && self.frozen_edges.iter().all(|&e| edge_ok(e))
    }

    /// Declared constraints, for reporting.
    pub fn len(&self) -> usize {
        self.sod_pairs.len() + self.frozen_edges.len() + usize::from(self.deny_level.is_some())
    }
}

/// The typed result of a refused admission: the findings that caused
/// the refusal, against the candidate state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdmissionReport {
    /// The violations, canonically ordered. Non-empty iff refused.
    pub findings: Vec<Finding>,
    /// How many declared constraints were evaluated.
    pub constraints_checked: usize,
}

impl AdmissionReport {
    /// `true` iff the batch must be refused.
    pub fn refused(&self) -> bool {
        !self.findings.is_empty()
    }
}

impl fmt::Display for AdmissionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission refused: {} finding(s) across {} constraint(s)",
            self.findings.len(),
            self.constraints_checked
        )
    }
}

/// One permission verdict that flips between parent and candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PermFlip {
    /// The user whose verdict changes.
    pub user: UserId,
    /// The permission term (a [`PrivTerm::Perm`] id).
    pub term: PrivId,
    /// The verdict *after* the batch (`false` means access is lost).
    pub now_granted: bool,
}

/// One edge whose interval status changes between parent and candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StatusChange {
    /// The edge.
    pub edge: Edge,
    /// Its status under the parent interval.
    pub before: EdgeStatus,
    /// Its status under the candidate interval.
    pub after: EdgeStatus,
}

/// The blast radius of a candidate batch, computed before commit.
#[derive(Clone, Debug, Default)]
pub struct ImpactReport {
    /// Per-command outcomes of the simulated batch.
    pub outcomes: Vec<StepOutcome>,
    /// Edge deltas the batch would publish (the [`EdgeDelta`] path the
    /// epoch pipeline and replication stream use).
    pub deltas: Vec<EdgeDelta>,
    /// `(user, perm)` verdicts that flip.
    pub flipped: Vec<PermFlip>,
    /// Was the parent grow-only (monotone saturation applies)?
    pub grow_only_before: bool,
    /// Is the candidate grow-only?
    pub grow_only_after: bool,
    /// Edges whose {frozen, volatile, unreachable} status changes.
    pub status_changes: Vec<StatusChange>,
    /// Admission findings against the candidate (empty when no
    /// constraints are declared or none are violated).
    pub findings: Vec<Finding>,
    /// Sessions the publish would force-deactivate. The core layer
    /// leaves this empty; the monitor (which owns the session table)
    /// fills in raw session ids.
    pub severed_sessions: Vec<u64>,
}

impl ImpactReport {
    /// `true` iff the batch would be refused by the gate.
    pub fn refused(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Simulates `commands` on scratch clones of `(universe, policy)` and
/// returns the candidate state with per-command outcomes. Nothing is
/// mutated; this is the pre-image every gate decision is made against.
pub fn simulate_batch(
    universe: &Universe,
    policy: &Policy,
    commands: &[Command],
    auth_mode: AuthMode,
) -> (Universe, Policy, Vec<StepOutcome>) {
    let mut cand_universe = universe.clone();
    let mut cand_policy = policy.clone();
    let outcomes = commands
        .iter()
        .map(|cmd| step(&mut cand_universe, &mut cand_policy, cmd, auth_mode))
        .collect();
    (cand_universe, cand_policy, outcomes)
}

/// Statically evaluates `constraints` against a (candidate) state and
/// returns the violations, canonically ordered.
///
/// Emitted findings:
/// * [`FindingKind::SodConflict`] (error, confirmed) — a user reaches
///   both roles of a declared pair in the state itself;
/// * [`FindingKind::FrozenEdgeViolation`] (error, confirmed) — an edge
///   asserted frozen is absent from the state;
/// * [`FindingKind::FrozenEdgeViolation`] (error, potential) — the edge
///   is present but not in `Φ⁻` (some authorized sequence revokes it);
/// * any lint finding at or above `deny_level`, verbatim, when set.
pub fn evaluate_constraints(
    universe: &Universe,
    policy: &Policy,
    constraints: &ConstraintSet,
    auth_mode: AuthMode,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if constraints.is_empty() {
        return findings;
    }
    if !constraints.sod_pairs.is_empty() {
        let index = ReachIndex::build(universe, policy);
        for &(a, b) in &constraints.sod_pairs {
            for u in universe.users() {
                if index.reach_entity(Entity::User(u), Entity::Role(a))
                    && index.reach_entity(Entity::User(u), Entity::Role(b))
                {
                    findings.push(Finding {
                        kind: FindingKind::SodConflict,
                        severity: Severity::Error,
                        role: a,
                        term: None,
                        edge: None,
                        confirmation: Some(Confirmation::Confirmed),
                        message: format!(
                            "user '{}' would hold both '{}' and '{}' in the published state",
                            universe.user_name(u),
                            universe.role_name(a),
                            universe.role_name(b)
                        ),
                    });
                }
            }
        }
    }
    if !constraints.frozen_edges.is_empty() {
        let interval = Interval::from_policy(universe, policy, auth_mode);
        for &edge in &constraints.frozen_edges {
            if !policy.contains_edge(edge) {
                findings.push(Finding {
                    kind: FindingKind::FrozenEdgeViolation,
                    severity: Severity::Error,
                    role: edge_anchor_role(edge),
                    term: None,
                    edge: Some(edge),
                    confirmation: Some(Confirmation::Confirmed),
                    message: "edge asserted frozen is absent from the published state".to_string(),
                });
            } else if interval.status(edge) != EdgeStatus::Frozen {
                findings.push(Finding {
                    kind: FindingKind::FrozenEdgeViolation,
                    severity: Severity::Error,
                    role: edge_anchor_role(edge),
                    term: None,
                    edge: Some(edge),
                    confirmation: Some(Confirmation::Potential),
                    message: "edge asserted frozen is revocable by an authorized command \
                              sequence (not in the must-closure)"
                        .to_string(),
                });
            }
        }
    }
    if let Some(level) = constraints.deny_level {
        let config = LintConfig {
            auth_mode,
            sod_pairs: constraints.sod_pairs.clone(),
        };
        let report = lint_policy(universe, policy, &config);
        findings.extend(report.findings.into_iter().filter(|f| f.severity >= level));
    }
    findings.sort_by_key(|f| (f.kind, f.role, f.term, f.edge, f.confirmation));
    findings.dedup();
    findings
}

/// The gate: simulates `commands` and refuses with an [`AdmissionReport`]
/// iff the *candidate* state violates `constraints`. `Ok(())` admits.
pub fn admit_batch(
    universe: &Universe,
    policy: &Policy,
    commands: &[Command],
    constraints: &ConstraintSet,
    auth_mode: AuthMode,
) -> Result<(), AdmissionReport> {
    if constraints.is_empty() {
        return Ok(());
    }
    let (cand_universe, cand_policy, _) = simulate_batch(universe, policy, commands, auth_mode);
    let findings = evaluate_constraints(&cand_universe, &cand_policy, constraints, auth_mode);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(AdmissionReport {
            findings,
            constraints_checked: constraints.len(),
        })
    }
}

/// Is `(universe, policy)` grow-only — no revoke-term assignment edge —
/// so monotone saturation applies? Mirrors the `non-monotone-island`
/// lint's root classification.
pub fn is_grow_only(universe: &Universe, policy: &Policy) -> bool {
    !policy.edges().any(|e| match e {
        Edge::RolePriv(_, p) => matches!(universe.term(p), PrivTerm::Revoke(_)),
        _ => false,
    })
}

/// Full blast-radius analysis of a candidate batch: simulate, diff the
/// parent against the candidate, and evaluate the gate — all without
/// mutating anything.
pub fn analyze_batch(
    universe: &Universe,
    policy: &Policy,
    commands: &[Command],
    constraints: &ConstraintSet,
    auth_mode: AuthMode,
) -> ImpactReport {
    let (cand_universe, cand_policy, outcomes) =
        simulate_batch(universe, policy, commands, auth_mode);
    let deltas = batch_deltas(commands, &outcomes);

    // Permission flips. Perm terms are interned only at build time
    // (steps intern ¤/♦ terms, never Perm), so the parent's term table
    // covers every Perm id in the candidate.
    let parent_index = ReachIndex::build(universe, policy);
    let cand_index = ReachIndex::build(&cand_universe, &cand_policy);
    let perm_terms: Vec<PrivId> = (0..universe.term_count())
        .map(PrivId::from_index)
        .filter(|&p| matches!(universe.term(p), PrivTerm::Perm(_)))
        .collect();
    let mut flipped = Vec::new();
    for u in universe.users() {
        for &p in &perm_terms {
            let before = parent_index.reach_priv(Entity::User(u), p);
            let after = cand_index.reach_priv(Entity::User(u), p);
            if before != after {
                flipped.push(PermFlip {
                    user: u,
                    term: p,
                    now_granted: after,
                });
            }
        }
    }

    // Interval status changes over every edge either closure mentions.
    let parent_interval = Interval::from_policy(universe, policy, auth_mode);
    let cand_interval = Interval::from_policy(&cand_universe, &cand_policy, auth_mode);
    let mut edges: BTreeSet<Edge> = parent_interval.potential.policy.edges().collect();
    edges.extend(cand_interval.potential.policy.edges());
    let status_changes = edges
        .into_iter()
        .filter_map(|e| {
            let before = parent_interval.status(e);
            let after = cand_interval.status(e);
            (before != after).then_some(StatusChange {
                edge: e,
                before,
                after,
            })
        })
        .collect();

    let findings = evaluate_constraints(&cand_universe, &cand_policy, constraints, auth_mode);
    ImpactReport {
        outcomes,
        deltas,
        flipped,
        grow_only_before: is_grow_only(universe, policy),
        grow_only_after: is_grow_only(&cand_universe, &cand_policy),
        status_changes,
        findings,
        severed_sessions: Vec::new(),
    }
}

/// The role a finding about `edge` anchors to (findings require one).
fn edge_anchor_role(edge: Edge) -> RoleId {
    match edge {
        Edge::UserRole(_, r) => r,
        Edge::RoleRole(r, _) => r,
        Edge::RolePriv(r, _) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;
    use crate::ordering::OrderingMode;
    use crate::policy::PolicyBuilder;

    /// Root: jane∈hr, bob∈staff; hr holds ♦(bob, staff) and ¤(bob, aud).
    fn fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("bob", "staff");
        let (bob, staff, aud) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
                u.role("aud"),
            )
        };
        let strip = b.universe_mut().priv_revoke(Edge::UserRole(bob, staff));
        let add = b.universe_mut().grant_user_role(bob, aud);
        b = b.assign_priv("hr", strip).assign_priv("hr", add);
        b.finish()
    }

    #[test]
    fn interval_classifies_frozen_volatile_unreachable() {
        let (uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let jane = uni.find_user("jane").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.find_role("hr").unwrap();
        let aud = uni.find_role("aud").unwrap();
        let iv = Interval::from_policy(&uni, &policy, AuthMode::Explicit);
        // (jane, hr) has no assigned revoker: frozen.
        assert_eq!(iv.status(Edge::UserRole(jane, hr)), EdgeStatus::Frozen);
        // (bob, staff) is revocable by hr: volatile.
        assert_eq!(iv.status(Edge::UserRole(bob, staff)), EdgeStatus::Volatile);
        // (bob, aud) is addable but not in the root: volatile.
        assert_eq!(iv.status(Edge::UserRole(bob, aud)), EdgeStatus::Volatile);
        // (jane, aud) is nowhere: unreachable.
        assert_eq!(
            iv.status(Edge::UserRole(jane, aud)),
            EdgeStatus::Unreachable
        );
        // The invariant Φ⁻ ⊆ root ⊆ Φ⁺ on this fixture.
        assert!(iv.frozen.iter().all(|&e| policy.contains_edge(e)));
        assert!(policy.edges().all(|e| iv.potential.policy.contains_edge(e)));
    }

    #[test]
    fn ordered_mode_freezes_strictly_less() {
        // Ordered ⊑ can only authorize *more* revocations, so ordered
        // Φ⁻ ⊆ explicit Φ⁻.
        let (uni, policy) = fixture();
        let explicit = Interval::from_policy(&uni, &policy, AuthMode::Explicit);
        let ordered =
            Interval::from_policy(&uni, &policy, AuthMode::Ordered(OrderingMode::Extended));
        assert!(ordered.frozen.is_subset(&explicit.frozen));
    }

    #[test]
    fn gate_refuses_candidate_sod_violation_only() {
        let (uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let jane = uni.find_user("jane").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let aud = uni.find_role("aud").unwrap();
        let mut constraints = ConstraintSet {
            sod_pairs: vec![(aud, staff)],
            ..ConstraintSet::default()
        };
        constraints.normalize();
        // The root is clean: bob holds staff but not aud.
        assert!(evaluate_constraints(&uni, &policy, &constraints, AuthMode::Explicit).is_empty());
        // A batch granting bob aud violates the pair in the candidate.
        let violating = [Command::grant(jane, Edge::UserRole(bob, aud))];
        let err =
            admit_batch(&uni, &policy, &violating, &constraints, AuthMode::Explicit).unwrap_err();
        assert!(err.refused());
        assert_eq!(err.findings.len(), 1);
        assert_eq!(err.findings[0].kind, FindingKind::SodConflict);
        assert_eq!(err.findings[0].confirmation, Some(Confirmation::Confirmed));
        // An unauthorized batch cannot reach the violating state: admitted.
        let unauthorized = [Command::grant(bob, Edge::UserRole(bob, aud))];
        admit_batch(
            &uni,
            &policy,
            &unauthorized,
            &constraints,
            AuthMode::Explicit,
        )
        .unwrap();
    }

    #[test]
    fn gate_enforces_frozen_edge_assertions() {
        let (uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let jane = uni.find_user("jane").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.find_role("hr").unwrap();
        // (jane, hr) is frozen: assertion holds, gate admits no-ops.
        let ok = ConstraintSet {
            frozen_edges: vec![Edge::UserRole(jane, hr)],
            ..ConstraintSet::default()
        };
        admit_batch(&uni, &policy, &[], &ok, AuthMode::Explicit).unwrap();
        // (bob, staff) is revocable: asserting it frozen fails (potential).
        let shaky = ConstraintSet {
            frozen_edges: vec![Edge::UserRole(bob, staff)],
            ..ConstraintSet::default()
        };
        let err = admit_batch(&uni, &policy, &[], &shaky, AuthMode::Explicit).unwrap_err();
        assert_eq!(err.findings[0].kind, FindingKind::FrozenEdgeViolation);
        assert_eq!(err.findings[0].confirmation, Some(Confirmation::Potential));
        // Revoking it outright fails confirmed.
        let batch = [Command::revoke(jane, Edge::UserRole(bob, staff))];
        let err = admit_batch(&uni, &policy, &batch, &shaky, AuthMode::Explicit).unwrap_err();
        assert_eq!(err.findings[0].confirmation, Some(Confirmation::Confirmed));
    }

    #[test]
    fn impact_reports_flips_deltas_and_status_changes() {
        let (uni, mut policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        // Give staff a permission so revoking bob flips a verdict.
        let mut uni2 = uni.clone();
        let read = uni2.perm("read", "logs");
        let read_t = uni2.priv_perm(read);
        policy.add_edge(Edge::RolePriv(staff, read_t));
        let batch = [Command::revoke(jane, Edge::UserRole(bob, staff))];
        let impact = analyze_batch(
            &uni2,
            &policy,
            &batch,
            &ConstraintSet::default(),
            AuthMode::Explicit,
        );
        assert_eq!(impact.deltas.len(), 1);
        assert!(!impact.deltas[0].added);
        assert!(impact
            .flipped
            .iter()
            .any(|f| f.user == bob && !f.now_granted));
        assert!(!impact.refused());
        assert!(impact
            .status_changes
            .iter()
            .any(|c| c.edge == Edge::UserRole(bob, staff)));
    }

    #[test]
    fn constraint_set_normalizes_and_bounds_checks() {
        let (uni, _) = fixture();
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.find_role("hr").unwrap();
        let mut c = ConstraintSet {
            sod_pairs: vec![(staff, hr), (hr, staff), (hr, staff)],
            ..ConstraintSet::default()
        };
        c.normalize();
        assert_eq!(c.sod_pairs, vec![(hr.min(staff), hr.max(staff))]);
        assert!(c.ids_in_bounds(&uni));
        c.sod_pairs.push((RoleId::from_index(999), hr));
        assert!(!c.ids_in_bounds(&uni));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(ConstraintSet::default().is_empty());
    }
}
