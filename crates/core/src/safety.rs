//! Safety analysis over the administrative transition system: which
//! policies — and hence which authorizations — are *reachable* from a
//! given policy by some command queue?
//!
//! This is the paper's analogue of the classic ARBAC user-role
//! reachability problem (cf. `adminref-baselines::arbac_reach`): instead
//! of `can_assign` rules, reachability here is driven by the assigned
//! administrative privileges and (optionally) everything `⊑`-weaker than
//! them. The state space is exponential, so the analysis is bounded by
//! step count and state count; positive answers come with a concrete
//! witness queue.
//!
//! # Engine
//!
//! The search runs on [`crate::search`]: every reachable policy differs
//! from the root only on the finite edge alphabet, so states are encoded
//! as **edge bitsets** interned in a state arena — `seen` and the parent
//! links hold `u32` indices, not policy clones, and witnesses are
//! rebuilt by walking parent indices. Each frontier policy is
//! materialised once per expansion: one [`ReachIndex`] (plus one
//! privilege order under ordered authorization) answers authorization
//! for the whole alphabet, and the `perm_reachable` goal is evaluated
//! incrementally from the parent's index instead of rebuilding an index
//! per candidate. Frontier expansion fans out over scoped worker
//! threads ([`SafetyConfig::jobs`]); answers and witnesses are
//! identical for every `jobs` setting.
//!
//! # Answer semantics
//!
//! * [`ReachabilityAnswer::Reachable`] — a witness queue was found. When
//!   the bounded search finds it, the witness is shortest; an escalated
//!   engine (below) may return a longer but still replayable witness.
//! * [`ReachabilityAnswer::Unreachable`] — exhaustively refuted, either
//!   by exploring the whole reachable space or by an unbounded engine.
//! * [`ReachabilityAnswer::Unknown`] — an unseen successor was actually
//!   cut off by `max_steps` or `max_states` before exhaustion, and no
//!   escalation engine could close the instance. The carried
//!   [`Truncation`] says exactly which bound bit and how far the search
//!   got, so the caller knows which knob to raise.
//!
//! # Escalation
//!
//! With [`SafetyConfig::escalate`] (the default), an inconclusive
//! bounded search hands the instance to [`crate::verify`]:
//!
//! * **grow-only instances** (no revoke rule anywhere in the edge
//!   universe) are decided *definitively* by the saturation engine,
//!   independent of `max_states` — even `max_states = 0` gets a real
//!   answer;
//! * general explicit-mode instances within the grounding budget go to
//!   the DPLL-backed bounded model checker, which closes many of them
//!   unboundedly via a recurrence-diameter check.
//!
//! The clone-based breadth-first search the engine replaced is kept as
//! [`find_reachable_clone`] — same answers, same witnesses, no
//! escalation — as the differential-testing and benchmarking baseline.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::command::{Command, CommandQueue};
use crate::enumerate::{enumerate_weaker, EnumerationConfig};
use crate::ids::{Entity, Perm, PrivId};
use crate::ordering::OrderingMode;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::search::{search, PolicySearch, SearchGoal, SearchLimits, SearchOutcome};
use crate::simulation::command_alphabet;
use crate::transition::{required_privilege, step, AuthMode};
use crate::universe::Universe;

/// Bounds for the reachability search.
#[derive(Clone, Copy, Debug)]
pub struct SafetyConfig {
    /// Maximum queue length to explore.
    pub max_steps: usize,
    /// Maximum number of distinct policies to visit.
    pub max_states: usize,
    /// Authorization semantics commands run under.
    pub auth_mode: AuthMode,
    /// Depth bound for weaker-privilege expansion of the command alphabet
    /// in ordered mode (ignored under explicit authorization). `None`
    /// uses the Remark 2 bound (longest `RH` chain).
    pub weaker_depth: Option<u32>,
    /// Worker threads for frontier expansion: `1` is sequential, `0`
    /// uses all available cores. Answers are identical either way.
    pub jobs: usize,
    /// Escalate an inconclusive bounded search to the unbounded engines
    /// in [`crate::verify`] (saturation for grow-only instances, DPLL
    /// bounded model checking in the general explicit-mode case). A
    /// definitive escalated answer replaces `Unknown`; its witness may
    /// be longer than `max_steps` (still replayable, not necessarily
    /// shortest). `false` reports the raw bounded answer.
    pub escalate: bool,
    /// Slice the command alphabet to the goal's cone of influence
    /// before searching (see [`crate::lint::slice_alphabet`]). Sound —
    /// the answer is unchanged — and on wide instances dramatically
    /// faster; `false` searches the full alphabet (the `--no-slice`
    /// escape hatch, and what differential tests compare against).
    /// Applies only to the goal-directed entry points
    /// ([`perm_reachable`], [`crate::verify::verify_perm_reachable`]);
    /// custom-goal searches always use the full alphabet.
    pub slice: bool,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            max_steps: 4,
            max_states: 50_000,
            auth_mode: AuthMode::Explicit,
            weaker_depth: None,
            jobs: 1,
            escalate: true,
            slice: true,
        }
    }
}

impl SafetyConfig {
    /// The search-engine limits this configuration induces.
    fn limits(&self) -> SearchLimits {
        SearchLimits {
            max_depth: self.max_steps,
            max_states: self.max_states,
            jobs: self.jobs,
        }
    }
}

/// What an inconclusive bounded search looked like when it was cut off
/// — the accounting that makes an `Unknown` actionable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Truncation {
    /// Distinct states interned when the search stopped (root included).
    pub states: usize,
    /// Deepest fully generated frontier depth.
    pub depth: usize,
    /// Whether the state cap dropped an unseen successor. `false` means
    /// only the depth bound cut the search off — raising `max_states`
    /// alone cannot turn this answer definitive.
    pub cap_hit: bool,
}

/// Result of a bounded reachability question.
#[derive(Clone, Debug)]
pub enum ReachabilityAnswer {
    /// A witness queue reaching the condition.
    Reachable {
        /// The queue, front first.
        witness: CommandQueue,
    },
    /// Exhaustively refuted: the whole reachable space was explored.
    Unreachable,
    /// An unseen successor was cut off by a bound before exhaustion.
    Unknown {
        /// Where and why the search was cut off.
        truncation: Truncation,
    },
}

impl ReachabilityAnswer {
    /// `true` for [`ReachabilityAnswer::Reachable`].
    pub fn is_reachable(&self) -> bool {
        matches!(self, ReachabilityAnswer::Reachable { .. })
    }
}

/// Can `entity` come to hold the user privilege `perm` in some policy
/// reachable from `policy`?
pub fn perm_reachable(
    universe: &mut Universe,
    policy: &Policy,
    entity: Entity,
    perm: Perm,
    config: SafetyConfig,
) -> ReachabilityAnswer {
    let target = universe.priv_perm(perm);
    let root_index = ReachIndex::build(universe, policy);
    if root_index.reach_priv(entity, target) {
        return ReachabilityAnswer::Reachable {
            witness: CommandQueue::new(),
        };
    }
    let mut alphabet = prepare_alphabet(universe, policy, config);
    if config.slice {
        alphabet = crate::lint::slice_alphabet(
            universe,
            policy,
            &alphabet,
            entity,
            target,
            config.auth_mode,
        )
        .alphabet;
    }
    let answer = {
        let space = PolicySearch::new(
            universe,
            policy,
            &alphabet,
            config.auth_mode,
            SearchGoal::Priv { entity, target },
            root_index,
        );
        run_engine(&space, config)
    };
    match answer {
        ReachabilityAnswer::Unknown { truncation } if config.escalate => crate::verify::escalate(
            universe, policy, &alphabet, config, entity, target, truncation,
        ),
        other => other,
    }
}

/// Breadth-first search for a reachable policy satisfying `goal`.
///
/// The alphabet is the finite relevant command set (see
/// [`command_alphabet`]); under ordered authorization it is additionally
/// expanded with commands for the edges of privileges `⊑`-weaker than any
/// assigned vertex, up to the configured depth — those are exactly the
/// extra commands ordered mode can authorize.
pub fn find_reachable(
    universe: &mut Universe,
    policy: &Policy,
    config: SafetyConfig,
    goal: impl Fn(&Universe, &Policy) -> bool + Sync,
) -> ReachabilityAnswer {
    if goal(universe, policy) {
        return ReachabilityAnswer::Reachable {
            witness: CommandQueue::new(),
        };
    }
    let alphabet = prepare_alphabet(universe, policy, config);
    let root_index = ReachIndex::build(universe, policy);
    let space = PolicySearch::new(
        universe,
        policy,
        &alphabet,
        config.auth_mode,
        SearchGoal::Custom(&goal),
        root_index,
    );
    run_engine(&space, config)
}

pub(crate) fn run_engine(space: &PolicySearch<'_>, config: SafetyConfig) -> ReachabilityAnswer {
    let (outcome, stats) = search(space, config.limits());
    match outcome {
        SearchOutcome::Found { witness } => ReachabilityAnswer::Reachable {
            witness: CommandQueue::from_commands(witness),
        },
        SearchOutcome::Exhausted => ReachabilityAnswer::Unreachable,
        SearchOutcome::Truncated => ReachabilityAnswer::Unknown {
            truncation: Truncation {
                states: stats.states,
                depth: stats.depth,
                cap_hit: stats.cap_hit,
            },
        },
    }
}

/// Builds the alphabet and pre-interns each command's required
/// privilege term, so the search itself runs on `&Universe`. Public so
/// the unbounded engines ([`crate::verify`]) can be driven directly
/// against the exact alphabet the bounded search would explore.
pub fn prepare_alphabet(
    universe: &mut Universe,
    policy: &Policy,
    config: SafetyConfig,
) -> Vec<(Command, PrivId)> {
    let alphabet = build_alphabet(universe, policy, config);
    alphabet
        .into_iter()
        .map(|cmd| {
            let target = required_privilege(universe, &cmd);
            (cmd, target)
        })
        .collect()
}

/// The seed's clone-based breadth-first search, kept as the reference
/// implementation: full policies in `seen`, authorization by on-the-fly
/// graph walks, no escalation. Returns the same answers (and equally
/// long witnesses) as the compact-state engine run with
/// `escalate: false` — a property test enforces that — at a much higher
/// per-candidate cost. Benchmarked in `benches/safety_search.rs`.
pub fn find_reachable_clone(
    universe: &mut Universe,
    policy: &Policy,
    config: SafetyConfig,
    goal: impl Fn(&Universe, &Policy) -> bool,
) -> ReachabilityAnswer {
    if goal(universe, policy) {
        return ReachabilityAnswer::Reachable {
            witness: CommandQueue::new(),
        };
    }
    let alphabet = build_alphabet(universe, policy, config);
    let mut seen: HashSet<Policy> = HashSet::new();
    let mut parents: HashMap<Policy, (Policy, Command)> = HashMap::new();
    let mut queue: VecDeque<(Policy, usize)> = VecDeque::new();
    seen.insert(policy.clone());
    queue.push_back((policy.clone(), 0));
    let mut truncated = false;
    let mut cap_hit = false;
    let mut deepest = 0usize;
    while let Some((state, depth)) = queue.pop_front() {
        deepest = deepest.max(depth);
        if depth >= config.max_steps {
            // Depth bound: the state is not expanded, but only an
            // actually cut-off (unseen) successor makes the search
            // inconclusive — a fully explored space stays exhaustive.
            if !truncated {
                truncated = alphabet.iter().any(|cmd| {
                    let mut next = state.clone();
                    step(universe, &mut next, cmd, config.auth_mode).changed
                        && !seen.contains(&next)
                });
            }
            continue;
        }
        for cmd in &alphabet {
            let mut next = state.clone();
            let outcome = step(universe, &mut next, cmd, config.auth_mode);
            if !outcome.changed || seen.contains(&next) {
                continue;
            }
            if goal(universe, &next) {
                let mut witness = rebuild_witness(&parents, policy, &state);
                witness.push(*cmd);
                return ReachabilityAnswer::Reachable {
                    witness: CommandQueue::from_commands(witness),
                };
            }
            if seen.len() >= config.max_states {
                // Cut off by the state cap. Dropped states are *not*
                // recorded in `parents` (the seed did, growing memory
                // without bound past the cap).
                truncated = true;
                cap_hit = true;
                continue;
            }
            seen.insert(next.clone());
            parents.insert(next.clone(), (state.clone(), *cmd));
            queue.push_back((next, depth + 1));
        }
    }
    if truncated {
        ReachabilityAnswer::Unknown {
            truncation: Truncation {
                states: seen.len(),
                depth: deepest,
                cap_hit,
            },
        }
    } else {
        ReachabilityAnswer::Unreachable
    }
}

/// Commands leading from `start` to `end` (both retained states).
fn rebuild_witness(
    parents: &HashMap<Policy, (Policy, Command)>,
    start: &Policy,
    end: &Policy,
) -> Vec<Command> {
    let mut commands = Vec::new();
    let mut cursor = end.clone();
    while &cursor != start {
        let (parent, cmd) = parents
            .get(&cursor)
            .expect("every retained state has a parent");
        commands.push(*cmd);
        cursor = parent.clone();
    }
    commands.reverse();
    commands
}

fn build_alphabet(universe: &mut Universe, policy: &Policy, config: SafetyConfig) -> Vec<Command> {
    let mut alphabet = command_alphabet(universe, &[policy]);
    if let AuthMode::Ordered(mode) = config.auth_mode {
        let depth = config
            .weaker_depth
            .unwrap_or_else(|| crate::enumerate::remark2_depth(universe, policy));
        let vertices: Vec<_> = policy.priv_vertices().into_iter().collect();
        let mut extra_edges = std::collections::BTreeSet::new();
        for p in vertices {
            if !universe.term(p).is_administrative() {
                continue;
            }
            let set = enumerate_weaker(
                universe,
                policy,
                p,
                EnumerationConfig {
                    max_depth: depth.max(1),
                    max_results: 10_000,
                    mode: match mode {
                        OrderingMode::Strict => OrderingMode::Strict,
                        other => other,
                    },
                },
            );
            for q in set.privileges {
                if let Some(edge) = universe.term(q).edge() {
                    extra_edges.insert(edge);
                }
            }
        }
        let actors: std::collections::BTreeSet<_> = alphabet.iter().map(|c| c.actor).collect();
        for &actor in &actors {
            for &edge in &extra_edges {
                alphabet.push(Command::grant(actor, edge));
                alphabet.push(Command::revoke(actor, edge));
            }
        }
        alphabet.sort_unstable();
        alphabet.dedup();
    }
    alphabet
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::transition::run_pure;
    use crate::universe::Edge;

    /// jane∈hr holds ¤(bob, staff); staff → dbusr2 → (write, t3).
    fn fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("staff", "prnt", "color");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn bob_can_gain_write_t3_in_one_step() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            write_t3,
            SafetyConfig::default(),
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("expected reachable, got {answer:?}");
        };
        assert_eq!(witness.len(), 1);
        let jane = uni.find_user("jane").unwrap();
        assert_eq!(witness.commands()[0].actor, jane);
    }

    #[test]
    fn unreachable_without_admin_privileges() {
        let (mut uni, mut policy) = fixture();
        // Strip HR's privilege: nobody can change anything.
        let hr = uni.find_role("hr").unwrap();
        let p = policy.privs_of(hr).next().unwrap();
        policy.remove_edge(Edge::RolePriv(hr, p));
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            write_t3,
            SafetyConfig::default(),
        );
        assert!(matches!(answer, ReachabilityAnswer::Unreachable));
    }

    #[test]
    fn already_satisfied_goal_returns_empty_witness() {
        let (mut uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        // Jane reaches nothing perm-wise; use a goal that's true at start.
        let answer = find_reachable(&mut uni, &policy, SafetyConfig::default(), |_, p| {
            p.edge_count() > 0
        });
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!();
        };
        assert!(witness.is_empty());
        let _ = jane;
    }

    #[test]
    fn tiny_bounds_with_escalation_are_still_definitive() {
        // The fixture is grow-only, so even absurd bounds escalate to
        // saturation and come back with a real answer.
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            never,
            SafetyConfig {
                max_steps: 1,
                max_states: 1,
                ..SafetyConfig::default()
            },
        );
        assert!(
            matches!(answer, ReachabilityAnswer::Unreachable),
            "{answer:?}"
        );
    }

    #[test]
    fn unknown_on_tiny_bounds_without_escalation() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            never,
            SafetyConfig {
                max_steps: 1,
                max_states: 1,
                escalate: false,
                // Sliced, the goal's empty cone would refute outright;
                // this test is about the raw truncation accounting.
                slice: false,
                ..SafetyConfig::default()
            },
        );
        let ReachabilityAnswer::Unknown { truncation } = answer else {
            panic!("{answer:?}");
        };
        // The state cap (not the depth bound) dropped a successor, and
        // only the root was interned.
        assert!(truncation.cap_hit);
        assert_eq!(truncation.states, 1);
    }

    #[test]
    fn exhausted_search_is_unreachable_at_exact_step_bound() {
        // Regression for the seed's truncation accounting: the only
        // reachable change is jane granting (bob, staff); the whole
        // space (two policies) is explored by max_steps = 1, so an
        // unreachable goal must answer Unreachable — the seed reported
        // Unknown whenever any state sat at the depth bound, even with
        // every successor already seen.
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        for max_steps in [1usize, 2, 3] {
            let answer = perm_reachable(
                &mut uni,
                &policy,
                Entity::User(bob),
                never,
                SafetyConfig {
                    max_steps,
                    ..SafetyConfig::default()
                },
            );
            assert!(
                matches!(answer, ReachabilityAnswer::Unreachable),
                "max_steps={max_steps}: {answer:?}"
            );
        }
        // One step short of the only change: the bounded search is
        // genuinely cut off, but escalation (the fixture is grow-only)
        // still closes the instance…
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            never,
            SafetyConfig {
                max_steps: 0,
                ..SafetyConfig::default()
            },
        );
        assert!(
            matches!(answer, ReachabilityAnswer::Unreachable),
            "{answer:?}"
        );
        // …and without escalation the truncation shows the depth bound
        // (not the state cap) did the cutting.
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            never,
            SafetyConfig {
                max_steps: 0,
                escalate: false,
                // As above: keep the full alphabet so the depth bound
                // genuinely cuts the search off.
                slice: false,
                ..SafetyConfig::default()
            },
        );
        let ReachabilityAnswer::Unknown { truncation } = answer else {
            panic!("{answer:?}");
        };
        assert!(!truncation.cap_hit);
    }

    #[test]
    fn reference_engine_agrees_on_the_fixture() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let reference = find_reachable_clone(&mut uni, &policy, SafetyConfig::default(), |u, p| {
            ReachIndex::build(u, p).reach_priv(Entity::User(bob), target)
        });
        let engine = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            write_t3,
            SafetyConfig::default(),
        );
        match (&reference, &engine) {
            (
                ReachabilityAnswer::Reachable { witness: a },
                ReachabilityAnswer::Reachable { witness: b },
            ) => assert_eq!(a.commands(), b.commands()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallel_jobs_do_not_change_answers() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let baseline = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            write_t3,
            SafetyConfig::default(),
        );
        for jobs in [2usize, 4, 0] {
            let answer = perm_reachable(
                &mut uni,
                &policy,
                Entity::User(bob),
                write_t3,
                SafetyConfig {
                    jobs,
                    ..SafetyConfig::default()
                },
            );
            match (&baseline, &answer) {
                (
                    ReachabilityAnswer::Reachable { witness: a },
                    ReachabilityAnswer::Reachable { witness: b },
                ) => assert_eq!(a.commands(), b.commands(), "jobs={jobs}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn ordered_mode_reaches_strictly_more() {
        // Give HR only ¤(bob, staff); ask whether a policy where bob is in
        // dbusr2 *but not staff* is reachable. Explicit mode: no (only the
        // exact edge can be granted). Ordered mode: yes, via the weaker
        // command.
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let goal = |_: &Universe, p: &Policy| {
            p.contains_edge(Edge::UserRole(bob, dbusr2))
                && !p.contains_edge(Edge::UserRole(bob, staff))
        };
        let explicit = find_reachable(
            &mut uni,
            &policy,
            SafetyConfig {
                max_steps: 3,
                ..SafetyConfig::default()
            },
            goal,
        );
        assert!(
            matches!(explicit, ReachabilityAnswer::Unreachable),
            "{explicit:?}"
        );
        let ordered = find_reachable(
            &mut uni,
            &policy,
            SafetyConfig {
                max_steps: 2,
                auth_mode: AuthMode::Ordered(OrderingMode::Extended),
                ..SafetyConfig::default()
            },
            goal,
        );
        assert!(ordered.is_reachable(), "{ordered:?}");
    }

    #[test]
    fn witness_replays_to_a_goal_state() {
        let (mut uni, policy) = fixture();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            write_t3,
            SafetyConfig::default(),
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!();
        };
        let final_policy = run_pure(&mut uni, &policy, &witness, AuthMode::Explicit);
        let idx = ReachIndex::build(&uni, &final_policy);
        let target = uni.priv_perm(write_t3);
        assert!(idx.reach_priv(Entity::User(bob), target));
    }

    #[test]
    fn multi_step_witness_through_delegation() {
        // Chained delegation exercises parent-link witness rebuilding:
        // jane puts bob into hr2; hr2 holds ¤(joe, staff); joe then
        // holds (write, t3) — two steps, two distinct actors.
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .declare_user("joe")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, joe, staff, hr2) = {
            let u = b.universe_mut();
            let bob = u.find_user("bob").unwrap();
            let joe = u.find_user("joe").unwrap();
            let staff = u.find_role("staff").unwrap();
            let hr2 = u.role("hr2");
            (bob, joe, staff, hr2)
        };
        let g1 = b.universe_mut().grant_user_role(bob, hr2);
        let g2 = b.universe_mut().grant_user_role(joe, staff);
        b = b.assign_priv("hr", g1);
        let (mut uni, mut policy) = b.finish();
        policy.add_edge(Edge::RolePriv(hr2, g2));
        let write_t3 = uni.perm("write", "t3");
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(joe),
            write_t3,
            SafetyConfig::default(),
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("expected reachable");
        };
        assert_eq!(witness.len(), 2, "{witness:?}");
        let final_policy = run_pure(&mut uni, &policy, &witness, AuthMode::Explicit);
        let target = uni.priv_perm(write_t3);
        assert!(ReachIndex::build(&uni, &final_policy).reach_priv(Entity::User(joe), target));
    }
}
