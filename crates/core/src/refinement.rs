//! Non-administrative refinement `φ ⊒ ψ` (Definition 6).
//!
//! `ψ` refines `φ` when `ψ` grants every user and role at most the user
//! privileges `φ` grants: for all `v ∈ U ∪ R` and user privileges `p ∈ P`,
//! `v →ψ p` implies `v →φ p`. Only *user* privileges count — moving
//! administrative privileges around does not by itself change how safe the
//! current policy is; it changes which policies are reachable, which is
//! Definition 7's business (see [`crate::simulation`]).

use crate::ids::{Entity, Perm};
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::universe::{Edge, PrivTerm, Universe};

/// A witness that refinement fails: `entity` can reach `perm` in `ψ` but
/// not in `φ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefinementViolation {
    /// The entity with excess authority.
    pub entity: Entity,
    /// The user privilege it should not reach.
    pub perm: Perm,
}

/// Decides `φ ⊒ ψ` (“`ψ` is a non-administrative refinement of `φ`”).
pub fn refines(universe: &Universe, phi: &Policy, psi: &Policy) -> bool {
    violations_impl(universe, phi, psi, true).is_empty()
}

/// All `(entity, perm)` pairs violating `φ ⊒ ψ` (empty iff it holds).
pub fn refinement_violations(
    universe: &Universe,
    phi: &Policy,
    psi: &Policy,
) -> Vec<RefinementViolation> {
    violations_impl(universe, phi, psi, false)
}

fn violations_impl(
    universe: &Universe,
    phi: &Policy,
    psi: &Policy,
    stop_at_first: bool,
) -> Vec<RefinementViolation> {
    phi.check_universe(universe);
    psi.check_universe(universe);
    let phi_idx = ReachIndex::build(universe, phi);
    let psi_idx = ReachIndex::build(universe, psi);
    violations_between(universe, phi, &phi_idx, psi, &psi_idx, stop_at_first)
}

/// The `φ ⊒ ψ` check against caller-supplied indexes, so a caller
/// comparing both directions (like [`equivalent`]), or many candidates
/// against one live policy (like a refinement service answering from a
/// snapshot with a prebuilt index), builds each [`ReachIndex`] exactly
/// once. With `stop_at_first` the scan returns at the first violation
/// (the boolean [`refines`] question); otherwise it is exhaustive.
pub fn violations_between(
    universe: &Universe,
    phi: &Policy,
    phi_idx: &ReachIndex,
    psi: &Policy,
    psi_idx: &ReachIndex,
    stop_at_first: bool,
) -> Vec<RefinementViolation> {
    let mut out = Vec::new();
    let entities = universe
        .users()
        .map(Entity::User)
        .chain(universe.roles().map(Entity::Role));
    for v in entities {
        let psi_perms = psi_idx.perms_reachable(universe, psi, v);
        if psi_perms.is_empty() {
            continue;
        }
        let phi_perms = phi_idx.perms_reachable(universe, phi, v);
        // Both sides are sorted and deduplicated; walk them in lockstep.
        let mut i = 0;
        for perm in psi_perms {
            while i < phi_perms.len() && phi_perms[i] < perm {
                i += 1;
            }
            if i >= phi_perms.len() || phi_perms[i] != perm {
                out.push(RefinementViolation { entity: v, perm });
                if stop_at_first {
                    return out;
                }
            }
        }
    }
    out
}

/// `true` iff the two policies authorize exactly the same user privileges
/// (`φ ⊒ ψ` and `ψ ⊒ φ`).
///
/// Each policy's [`ReachIndex`] is built once and shared across both
/// directions (calling [`refines`] twice would rebuild both).
pub fn equivalent(universe: &Universe, a: &Policy, b: &Policy) -> bool {
    a.check_universe(universe);
    b.check_universe(universe);
    let a_idx = ReachIndex::build(universe, a);
    let b_idx = ReachIndex::build(universe, b);
    violations_between(universe, a, &a_idx, b, &b_idx, true).is_empty()
        && violations_between(universe, b, &b_idx, a, &a_idx, true).is_empty()
}

/// Theorem 1's construction: `ψ = (φ \ (r, p)) ∪ (r, q)` — replace one
/// privilege assignment by a (presumably weaker) one.
///
/// The theorem states that when `p ⊑φ q`, the result is an administrative
/// refinement of `φ`.
pub fn weaken_assignment(
    phi: &Policy,
    assignment: (crate::ids::RoleId, crate::ids::PrivId),
    weaker: crate::ids::PrivId,
) -> Policy {
    let (role, p) = assignment;
    let mut psi = phi.clone();
    psi.remove_edge(Edge::RolePriv(role, p));
    psi.add_edge(Edge::RolePriv(role, weaker));
    psi
}

/// Counts, per entity, how many user privileges each policy authorizes —
/// a quick "safety mass" summary used by examples and benches.
pub fn authorized_perm_count(universe: &Universe, policy: &Policy) -> usize {
    let idx = ReachIndex::build(universe, policy);
    universe
        .users()
        .map(Entity::User)
        .chain(universe.roles().map(Entity::Role))
        .map(|v| idx.perms_reachable(universe, policy, v).len())
        .sum()
}

/// `true` iff `perm` is a user privilege some role of `policy` holds.
pub fn perm_is_assigned(universe: &Universe, policy: &Policy, perm: Perm) -> bool {
    policy
        .pa()
        .any(|(_, p)| matches!(universe.term(p), PrivTerm::Perm(q) if q == perm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    /// Figure 1 of the paper.
    fn figure1() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "prntusr")
            .inherit("nurse", "dbusr1")
            .inherit("staff", "dbusr2")
            .inherit("dbusr2", "dbusr1")
            .permit("prntusr", "prnt", "black")
            .permit("staff", "prnt", "color")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr1", "read", "t2")
            .permit("dbusr2", "write", "t3")
            .finish()
    }

    #[test]
    fn refinement_is_reflexive() {
        let (uni, policy) = figure1();
        assert!(refines(&uni, &policy, &policy));
        assert!(equivalent(&uni, &policy, &policy));
    }

    #[test]
    fn removing_any_edge_refines_example3() {
        // “Clearly, by removing any of the edges in the policy one obtains
        // a refinement of the policy.”
        let (uni, policy) = figure1();
        for edge in policy.edges().collect::<Vec<_>>() {
            let mut psi = policy.clone();
            psi.remove_edge(edge);
            assert!(
                refines(&uni, &policy, &psi),
                "removing {edge:?} must refine"
            );
        }
    }

    #[test]
    fn rearranging_diana_to_nurse_refines_example3() {
        // Replace diana→staff by diana→nurse: still a refinement.
        let (uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let mut psi = policy.clone();
        psi.remove_edge(Edge::UserRole(diana, staff));
        psi.add_edge(Edge::UserRole(diana, nurse));
        assert!(refines(&uni, &policy, &psi));
        // And it is strict: diana lost (write, t3).
        assert!(!refines(&uni, &psi, &policy));
    }

    #[test]
    fn rearranging_nurse_to_dbusr2_does_not_refine_example3() {
        // “if we replace the edge between nurse and dbusr1 with an edge
        // between nurse and dbusr2, we do not obtain a refinement, as
        // nurses get more privileges.”
        let (uni, policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let dbusr1 = uni.find_role("dbusr1").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let mut psi = policy.clone();
        psi.remove_edge(Edge::RoleRole(nurse, dbusr1));
        psi.add_edge(Edge::RoleRole(nurse, dbusr2));
        assert!(!refines(&uni, &policy, &psi));
        let violations = refinement_violations(&uni, &policy, &psi);
        assert!(!violations.is_empty());
        // The nurse role itself must be among the violators, with write t3.
        let mut uni2 = uni.clone();
        let w3 = uni2.perm("write", "t3");
        assert!(violations
            .iter()
            .any(|v| v.entity == Entity::Role(nurse) && v.perm == w3));
    }

    #[test]
    fn adding_edges_breaks_refinement_where_it_grants_perms() {
        let (mut uni, policy) = figure1();
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let mut psi = policy.clone();
        psi.add_edge(Edge::UserRole(bob, staff));
        // psi grants bob perms that phi does not.
        assert!(!refines(&uni, &policy, &psi));
        // but phi is refined by... wait, psi has more perms, so phi ⊒ psi
        // fails while psi ⊒ phi holds.
        assert!(refines(&uni, &psi, &policy));
    }

    #[test]
    fn admin_privileges_do_not_affect_nonadmin_refinement() {
        // Adding an administrative privilege leaves Definition 6 untouched.
        let (mut uni, policy) = figure1();
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.role("hr");
        let g = uni.grant_user_role(bob, staff);
        let mut psi = policy.clone();
        psi.add_edge(Edge::RolePriv(hr, g));
        assert!(refines(&uni, &policy, &psi));
        assert!(refines(&uni, &psi, &policy));
        assert!(equivalent(&uni, &policy, &psi));
    }

    #[test]
    fn weaken_assignment_swaps_one_edge() {
        let (mut uni, mut policy) = figure1();
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let hr = uni.role("hr");
        let p = uni.grant_user_role(bob, staff);
        let q = uni.grant_user_role(bob, dbusr2);
        policy.add_edge(Edge::RolePriv(hr, p));
        let psi = weaken_assignment(&policy, (hr, p), q);
        assert!(!psi.contains_edge(Edge::RolePriv(hr, p)));
        assert!(psi.contains_edge(Edge::RolePriv(hr, q)));
        assert_eq!(psi.edge_count(), policy.edge_count());
    }

    #[test]
    fn violation_reporting_is_complete() {
        let (uni, policy) = figure1();
        let empty = Policy::new(&uni);
        // Everything psi grants is a violation against the empty policy.
        let violations = refinement_violations(&uni, &empty, &policy);
        let total = authorized_perm_count(&uni, &policy);
        assert_eq!(violations.len(), total);
        assert!(refines(&uni, &policy, &empty));
    }

    #[test]
    fn perm_assignment_probe() {
        let (mut uni, policy) = figure1();
        let read_t1 = uni.perm("read", "t1");
        let read_t9 = uni.perm("read", "t9");
        assert!(perm_is_assigned(&uni, &policy, read_t1));
        assert!(!perm_is_assigned(&uni, &policy, read_t9));
    }
}
