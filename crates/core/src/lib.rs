//! # adminref-core
//!
//! A from-scratch implementation of **“Refinement for Administrative
//! Policies”** (M.A.C. Dekker and S. Etalle, 2007): administrative RBAC
//! policies over ANSI General Hierarchical RBAC, the small-step semantics
//! of administrative commands, non-administrative and administrative
//! refinement, and the privilege ordering `⊑φ` with its decision procedure.
//!
//! ## Map from the paper
//!
//! | Paper | Here |
//! |-------|------|
//! | Definition 1 (non-administrative policies) | [`policy::Policy`] + [`Policy::is_non_administrative`](policy::Policy::is_non_administrative) |
//! | Definition 2 (privilege grammar `P†`) | [`universe::PrivTerm`] interned in [`universe::Universe`] |
//! | Definition 3 (administrative policies) | [`policy::Policy`] |
//! | Definition 4 (commands, queues) | [`command`] |
//! | Definition 5 (transition function `⇒`) | [`transition`] |
//! | Definition 6 (non-administrative refinement `⊒`) | [`refinement`] |
//! | Definition 7 (administrative refinement `⊒†`) | [`simulation`] (bounded check) |
//! | Definition 8 (privilege ordering `⊑φ`) + Lemma 1 | [`ordering`] |
//! | Example 6 / Remark 2 (infinite weaker sets, depth bound) | [`enumerate`] |
//! | §2 sessions | [`session`] |
//!
//! ## Quick start
//!
//! ```
//! use adminref_core::prelude::*;
//!
//! // Figure 3: Jane (HR) holds ¤(bob, staff); staff reaches dbusr2.
//! let mut builder = PolicyBuilder::new()
//!     .assign("jane", "hr")
//!     .declare_user("bob")
//!     .inherit("staff", "dbusr2")
//!     .permit("dbusr2", "write", "t3");
//! let (bob, staff) = {
//!     let u = builder.universe_mut();
//!     (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
//! };
//! let held = builder.universe_mut().grant_user_role(bob, staff);
//! let (mut uni, policy) = builder.assign_priv("hr", held).finish();
//!
//! // The ordering lets Jane assign Bob directly to dbusr2.
//! let dbusr2 = uni.find_role("dbusr2").unwrap();
//! let weaker = uni.grant_user_role(bob, dbusr2);
//! let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
//! assert!(order.is_weaker(held, weaker));
//! ```
//!
//! Every substrate (interning, bitsets, SCC/closure, reachability, the
//! compact-state search engine) is implemented here; the only
//! dependencies are the workspace's vendored `crossbeam`/`parking_lot`
//! shims used for the parallel frontier expansion in [`search`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod analysis;
pub mod bitset;
pub mod checksum;
pub mod closure;
pub mod command;
pub mod display;
pub mod enumerate;
pub mod ids;
pub mod interner;
pub mod lint;
pub mod ordering;
pub mod policy;
pub mod reach;
pub mod refinement;
pub mod safety;
pub mod search;
pub mod session;
pub mod simulation;
pub mod snapshot;
pub mod transition;
pub mod universe;
pub mod verify;

/// The items nearly every consumer wants.
pub mod prelude {
    pub use crate::admission::{
        admit_batch, analyze_batch, evaluate_constraints, is_grow_only, simulate_batch,
        AdmissionReport, ConstraintSet, EdgeStatus, ImpactReport, Interval, PermFlip, StatusChange,
    };
    pub use crate::checksum::{edge_digest, edges_checksum, policy_checksum, toggle_edge};
    pub use crate::command::{Command, CommandKind, CommandQueue};
    pub use crate::display::{
        command_to_string, edge_to_string, perm_to_string, policy_to_string, priv_to_string,
        Notation,
    };
    pub use crate::enumerate::{enumerate_weaker, remark2_depth, EnumerationConfig, WeakerSet};
    pub use crate::ids::{ActionId, Entity, Node, ObjectId, Perm, PrivId, RoleId, UserId};
    pub use crate::lint::{
        lint_policy, rule_sites, slice_alphabet, Confirmation, DependencyGraph, Finding,
        FindingKind, LintConfig, LintReport, Potential, RuleSite, Severity, SliceOutcome,
    };
    pub use crate::ordering::{Derivation, OrderingMode, PrivilegeOrder};
    pub use crate::policy::{Policy, PolicyBuilder};
    pub use crate::reach::{reaches, reaches_entity, EdgeDelta, ReachIndex};
    pub use crate::refinement::{
        equivalent, refinement_violations, refines, violations_between, weaken_assignment,
        RefinementViolation,
    };
    pub use crate::safety::{
        find_reachable, find_reachable_clone, perm_reachable, ReachabilityAnswer, SafetyConfig,
        Truncation,
    };
    pub use crate::search::{SearchLimits, SearchOutcome, SearchStats};
    pub use crate::session::{Session, SessionError};
    pub use crate::simulation::{
        check_admin_refinement, command_alphabet, SimulationConfig, SimulationDirection,
        SimulationOutcome,
    };
    pub use crate::snapshot::{batch_deltas, PolicySnapshot, PublishMode, PublishPath};
    pub use crate::transition::{
        apply_edge, authorize, authorize_explicit, authorize_with_order, required_privilege, run,
        run_pure, step, AuthMode, Authorization, RunTrace, StepOutcome, StepRecord,
    };
    pub use crate::universe::{Edge, EdgeTarget, PrivTerm, Universe, UniverseTag};
    pub use crate::verify::{
        bmc::{BmcConfig, BmcOutcome, BmcReport},
        saturation::{saturate, DerivationStep, SaturationOutcome},
        specs::{record_trace, InvariantSuite, SessionView, TraceDecision, TraceStep, Violation},
        verify_perm_reachable, EngineUsed, VerifyReport,
    };
}
