//! Static policy analysis: lint diagnostics and goal-directed alphabet
//! slicing, both search-free.
//!
//! This module looks at an administrative policy *statically* — no
//! state-space exploration — and produces two things:
//!
//! 1. **Diagnostics** ([`lint_policy`]): per-command may-add/may-remove
//!    summaries and a privilege-dependency graph ([`DependencyGraph`]),
//!    from which a lint pass derives typed [`Finding`]s. The catalog:
//!
//!    | kind | severity | fires when |
//!    |------|----------|------------|
//!    | `dead-command` | warning | a rule can never change any reachable policy |
//!    | `unauthorizable` | warning | no `⊑`-compatible authorizing term is ever assigned in `Φ⁺` |
//!    | `redundant-grant` | note | the role already reaches the term through the hierarchy |
//!    | `shadowed-grant` | warning | a reachable revocation can strip the grant rule |
//!    | `non-monotone-island` | warning/note | a revoke assignment blocks (or would block) [`crate::verify`]'s saturation fast path |
//!    | `sod-conflict` | error/warning | a user statically reaches both roles of a declared separation-of-duty pair (error when the root itself witnesses the co-holding, warning when only `Φ⁺` does) |
//!    | `frozen-edge-violation` | error | an admission constraint asserts an edge frozen that the candidate policy drops or leaves revocable (see [`crate::admission`]) |
//!
//!    Every check is conservative over the may-add closure `Φ⁺`
//!    ([`Potential`]), which contains every reachable policy; see the
//!    check docs in the `checks` module for the exact conditions.
//!
//! 2. **Slicing** ([`slice_alphabet`]): a goal-directed cone-of-influence
//!    reduction of the command alphabet that preserves the answer of
//!    `perm_reachable` exactly — the soundness argument lives in the
//!    `slice` module docs. [`crate::safety::SafetyConfig::slice`]
//!    turns it on (the default) for the bounded search, the saturation
//!    engine and the BMC grounding alike.
//!
//! Both halves share the same foundation: the goal predicate and the
//! authorization relation are *monotone* in the policy's edge set, so a
//! least fixpoint of "edges some assigned rule can add" over-approximates
//! everything any run can ever do.

mod checks;
mod deps;
mod findings;
mod potential;
mod slice;

pub use deps::{rule_sites, DependencyGraph, RuleSite};
pub use findings::{Confirmation, Finding, FindingKind, LintReport, Severity};
pub use potential::Potential;
pub use slice::{slice_alphabet, SliceOutcome};

use crate::policy::Policy;
use crate::transition::AuthMode;
use crate::universe::Universe;

/// Configuration for a lint pass.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Authorization semantics the policy runs under; affects which
    /// terms count as authorizing (`⊑`-compatible in ordered mode).
    pub auth_mode: AuthMode,
    /// Separation-of-duty role pairs to check statically (the same
    /// pairs [`crate::verify::specs::separation_of_duty`] monitors
    /// dynamically).
    pub sod_pairs: Vec<(crate::ids::RoleId, crate::ids::RoleId)>,
}

/// Runs the full lint pass over `(universe, root)` and returns the
/// canonically ordered report.
pub fn lint_policy(universe: &Universe, root: &Policy, config: &LintConfig) -> LintReport {
    let potential = Potential::from_policy(universe, root, config.auth_mode);
    let graph = DependencyGraph::build(universe, root);
    let findings = checks::run_checks(universe, root, &potential, &graph, config);
    let mut report = LintReport {
        findings,
        rules_checked: rule_sites(universe, root).len(),
        closure_edges: potential.edge_count(),
    };
    report.canonicalize();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::universe::{Edge, PrivTerm};

    #[test]
    fn clean_grow_only_policy_has_no_findings() {
        // The hospital-shaped fixture: one live grant rule, nothing
        // dead, shadowed or redundant.
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        let (uni, policy) = b.finish();
        let report = lint_policy(&uni, &policy, &LintConfig::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.rules_checked >= 1);
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn dead_grant_and_dead_revoke_are_flagged() {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("bob", "staff")
            .declare_user("eve");
        let (bob, staff, eve, temps) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_user("eve").unwrap(),
                u.role("temps"),
            )
        };
        // Dead grant: (bob, staff) is already in the root and nothing
        // can ever remove it.
        let dead_grant = b.universe_mut().grant_user_role(bob, staff);
        // Dead revoke: (eve, temps) is never present.
        let dead_revoke = b.universe_mut().priv_revoke(Edge::UserRole(eve, temps));
        b = b
            .assign_priv("hr", dead_grant)
            .assign_priv("hr", dead_revoke);
        let (uni, policy) = b.finish();
        let report = lint_policy(&uni, &policy, &LintConfig::default());
        let dead: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DeadCommand)
            .collect();
        assert_eq!(dead.len(), 2, "{:?}", report.findings);
        assert!(dead.iter().any(|f| f.term == Some(dead_grant)));
        assert!(dead.iter().any(|f| f.term == Some(dead_revoke)));
        // The dead revoke assignment is also a dead non-monotone island.
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::NonMonotoneIsland && f.severity == Severity::Warning));
    }

    #[test]
    fn nested_rule_inside_revoke_is_unauthorizable() {
        // ops holds ♦(aud → ¤(erin, temps)): the outer revoke is dead
        // (its edge never present) and the inner grant is nested where
        // the closure can never assign it.
        let mut b = PolicyBuilder::new()
            .assign("olga", "ops")
            .assign("erin", "temps");
        let (erin, temps, aud) = {
            let u = b.universe_mut();
            (
                u.find_user("erin").unwrap(),
                u.find_role("temps").unwrap(),
                u.role("aud"),
            )
        };
        let inner = b.universe_mut().grant_user_role(erin, temps);
        let outer = b.universe_mut().priv_revoke(Edge::RolePriv(aud, inner));
        b = b.assign_priv("ops", outer);
        let (uni, policy) = b.finish();
        let report = lint_policy(&uni, &policy, &LintConfig::default());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::Unauthorizable && f.term == Some(inner)),
            "{:?}",
            report.findings
        );
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DeadCommand && f.term == Some(outer)));
    }

    #[test]
    fn shadowed_and_redundant_grants_are_flagged() {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("mike", "sec")
            .declare_user("bob")
            .inherit("senior", "junior")
            .permit("junior", "read", "logs")
            .permit("senior", "read", "logs");
        let (bob, staff, hr) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.role("staff"),
                u.find_role("hr").unwrap(),
            )
        };
        let rule = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", rule);
        // sec can revoke hr's grant rule: the rule is shadowed.
        let strip = b.universe_mut().priv_revoke(Edge::RolePriv(hr, rule));
        b = b.assign_priv("sec", strip);
        let (mut uni, policy) = b.finish();
        let report = lint_policy(&uni, &policy, &LintConfig::default());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::ShadowedGrant
                    && f.edge == Some(Edge::RolePriv(hr, rule))),
            "{:?}",
            report.findings
        );
        // senior's direct (read, logs) is redundant through junior.
        let read_logs_perm = uni.perm("read", "logs");
        let read_logs = uni.find_term(PrivTerm::Perm(read_logs_perm)).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::RedundantGrant && f.term == Some(read_logs)));
    }

    #[test]
    fn latent_island_fires_only_on_grow_only_roots() {
        // The root is grow-only, but hr can grant aud a revoke rule:
        // latent island (note).
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("bob", "staff");
        let (bob, staff, aud) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
                u.role("aud"),
            )
        };
        let strip = b.universe_mut().priv_revoke(Edge::UserRole(bob, staff));
        let handout = b.universe_mut().priv_grant(Edge::RolePriv(aud, strip));
        b = b.assign_priv("hr", handout);
        let (uni, policy) = b.finish();
        let report = lint_policy(&uni, &policy, &LintConfig::default());
        let islands: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::NonMonotoneIsland)
            .collect();
        assert_eq!(islands.len(), 1, "{:?}", report.findings);
        assert_eq!(islands[0].severity, Severity::Note);
        assert_eq!(islands[0].term, Some(strip));
    }

    #[test]
    fn sod_conflicts_report_root_and_grantable_paths() {
        let mut b = PolicyBuilder::new()
            .assign("jane", "pay")
            .assign("jane", "audit")
            .assign("mike", "pay")
            .assign("root", "admin")
            .declare_user("nobody");
        let (mike, audit, pay) = {
            let u = b.universe_mut();
            (
                u.find_user("mike").unwrap(),
                u.find_role("audit").unwrap(),
                u.find_role("pay").unwrap(),
            )
        };
        let g = b.universe_mut().grant_user_role(mike, audit);
        b = b.assign_priv("admin", g);
        let (uni, policy) = b.finish();
        let config = LintConfig {
            sod_pairs: vec![(pay, audit)],
            ..LintConfig::default()
        };
        let report = lint_policy(&uni, &policy, &config);
        let sod: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::SodConflict)
            .collect();
        // jane violates in the root; mike becomes able via admin's rule.
        assert_eq!(sod.len(), 2, "{:?}", report.findings);
        assert!(sod.iter().any(|f| f.message.contains("root policy itself")
            && f.confirmation == Some(Confirmation::Confirmed)
            && f.severity == Severity::Error));
        assert!(sod.iter().any(|f| f.message.contains("grantable")
            && f.message.contains("enabled by rule(s)")
            && f.confirmation == Some(Confirmation::Potential)
            && f.severity == Severity::Warning));
        assert_eq!(report.max_severity(), Some(Severity::Error));
        // Without declared pairs, nothing fires.
        let clean = lint_policy(&uni, &policy, &LintConfig::default());
        assert!(clean
            .findings
            .iter()
            .all(|f| f.kind != FindingKind::SodConflict));
    }
}
