//! Goal-directed cone-of-influence slicing of the command alphabet.
//!
//! [`slice_alphabet`] shrinks a prepared alphabet to the commands that
//! can transitively influence a [`crate::search::SearchGoal::Priv`]
//! goal `entity →φ target`, so the bounded search and the BMC grounding
//! explore a (often dramatically) smaller space with the **same
//! answer**.
//!
//! # Soundness
//!
//! The goal is *monotone*: authorization and `→φ` reachability use
//! edges only positively, so if the goal holds in `φ` it holds in every
//! superset of `φ`. The sliced alphabet is a subset of the input
//! alphabet in the original order, which gives one direction outright:
//! any sliced witness is a witness of the full instance. The other
//! direction is witness projection. Take a full witness run `ρ`:
//!
//! 1. **Revokes drop.** Deleting every revoke from `ρ` leaves each
//!    intermediate policy a superset of the original one, so (by
//!    monotonicity) every remaining grant stays authorized and the goal
//!    still holds at the end. A monotone goal never needs a revocation.
//! 2. **Out-of-closure grants drop.** Grants whose edge is outside the
//!    may-add closure `Φ⁺` ([`Potential`]) can never execute at all,
//!    and grants of root edges are no-ops once revokes are gone.
//! 3. **Out-of-cone grants drop.** The cone `R` is the least set of
//!    addable edges containing every *goal-relevant* edge (the add-edge
//!    split lemma evaluated over `Φ⁺`: the edge can lie on some
//!    `entity → target` path in some reachable policy) and closed under
//!    *authorization support*: for every kept grant command, every
//!    addable edge that can lie on one of its actor's authorization
//!    paths (its user-assignment, the role-hierarchy links, and the
//!    `⊑`-compatible privilege assignments they lead to) is in `R`.
//!    Because `Φ⁺`-reachability over-approximates reachability in every
//!    reachable policy, the goal path and every authorization path of
//!    the projected run consist of root edges and `R`-edges only — so
//!    deleting grants of non-`R` edges preserves each remaining
//!    command's authorization and the final goal.
//!
//! The projected run is a run of the sliced instance reaching the goal,
//! and it is never longer than `ρ`, so the equivalence holds under any
//! `max_steps` bound too (and the sliced state space is a subset of the
//! full one, so `max_states` truncation can only shrink).
//!
//! Under **ordered** authorization the cone closure is not valid as
//! computed — an edge can influence a run by changing the `⊑φ`
//! derivation itself, not just by lying on a path — so ordered mode
//! applies steps 1–2 only (both justified purely by monotonicity and
//! the closure over-approximation, which hold in every mode).
//!
//! A pleasant corollary of step 1: the sliced alphabet never contains a
//! revoke command, so instances that were non-monotone only because of
//! revoke rules become grow-only after slicing and take the saturation
//! fast path in [`crate::verify`].

use crate::command::{Command, CommandKind};
use crate::ids::{Entity, PrivId, RoleId, UserId};
use crate::policy::Policy;
use crate::transition::AuthMode;
use crate::universe::{Edge, Universe};

use super::potential::Potential;

/// The result of slicing an alphabet for one goal.
#[derive(Clone, Debug)]
pub struct SliceOutcome {
    /// The sliced alphabet: a subsequence of the input.
    pub alphabet: Vec<(Command, PrivId)>,
    /// Commands in the input alphabet.
    pub before: usize,
    /// Commands kept.
    pub after: usize,
}

impl SliceOutcome {
    /// Did slicing remove anything?
    pub fn shrunk(&self) -> bool {
        self.after < self.before
    }
}

/// Slices `alphabet` to the cone of influence of the goal
/// `entity →φ target`. See the module docs for the soundness argument;
/// the answer of a `perm_reachable` search over the sliced alphabet
/// equals the unsliced answer wherever either is definite.
pub fn slice_alphabet(
    universe: &Universe,
    root: &Policy,
    alphabet: &[(Command, PrivId)],
    entity: Entity,
    target: PrivId,
    auth_mode: AuthMode,
) -> SliceOutcome {
    let potential = Potential::from_alphabet(universe, root, alphabet, auth_mode);
    let keep: Vec<bool> = match auth_mode {
        AuthMode::Explicit => explicit_cone(universe, alphabet, &potential, entity, target),
        AuthMode::Ordered(_) => alphabet
            .iter()
            .map(|(cmd, _)| cmd.kind == CommandKind::Grant && potential.addable.contains(&cmd.edge))
            .collect(),
    };
    let sliced: Vec<(Command, PrivId)> = alphabet
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(&entry, _)| entry)
        .collect();
    SliceOutcome {
        before: alphabet.len(),
        after: sliced.len(),
        alphabet: sliced,
    }
}

/// The explicit-mode cone: seed with goal-relevant addable edges, then
/// close under authorization support per kept command. Returns the keep
/// mask over `alphabet`.
fn explicit_cone(
    universe: &Universe,
    alphabet: &[(Command, PrivId)],
    potential: &Potential,
    entity: Entity,
    target: PrivId,
) -> Vec<bool> {
    let idx = &potential.index;
    // The add-edge split lemma over Φ⁺ (cf. saturation's goal probe):
    // can adding `edge` complete an `entity → target` path in some
    // reachable policy?
    let goal_relevant = |edge: Edge| match edge {
        Edge::UserRole(u, r) => {
            entity == Entity::User(u) && idx.reach_priv(Entity::Role(r), target)
        }
        Edge::RoleRole(r, s) => {
            idx.reach_entity(entity, Entity::Role(r)) && idx.reach_priv(Entity::Role(s), target)
        }
        Edge::RolePriv(r, p) => p == target && idx.reach_entity(entity, Entity::Role(r)),
    };
    let mut in_cone: std::collections::BTreeSet<Edge> = potential
        .addable
        .iter()
        .copied()
        .filter(|&e| goal_relevant(e))
        .collect();
    // Commands by edge, for worklist propagation.
    let mut by_edge: std::collections::BTreeMap<Edge, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, (cmd, _)) in alphabet.iter().enumerate() {
        if cmd.kind == CommandKind::Grant && potential.addable.contains(&cmd.edge) {
            by_edge.entry(cmd.edge).or_default().push(i);
        }
    }
    let mut queued = vec![false; alphabet.len()];
    let mut worklist: Vec<usize> = Vec::new();
    for &e in &in_cone {
        for &i in by_edge.get(&e).into_iter().flatten() {
            queued[i] = true;
            worklist.push(i);
        }
    }
    while let Some(i) = worklist.pop() {
        let (cmd, required) = alphabet[i];
        for e in support_edges(universe, potential, cmd.actor, required) {
            if !in_cone.insert(e) {
                continue;
            }
            for &j in by_edge.get(&e).into_iter().flatten() {
                if !queued[j] {
                    queued[j] = true;
                    worklist.push(j);
                }
            }
        }
    }
    alphabet
        .iter()
        .map(|(cmd, _)| cmd.kind == CommandKind::Grant && in_cone.contains(&cmd.edge))
        .collect()
}

/// Every addable edge that can lie on an authorization path of
/// `cmd(actor, ¤, …)` requiring `required`, over-approximated in `Φ⁺`:
/// the assignments of `required` the actor can reach, the actor's own
/// user-role edges leading toward one, and the hierarchy links between.
fn support_edges(
    universe: &Universe,
    potential: &Potential,
    actor: UserId,
    required: PrivId,
) -> Vec<Edge> {
    let _ = universe;
    let idx = &potential.index;
    let me = Entity::User(actor);
    // Roles whose assignment of `required` the actor can reach in Φ⁺.
    let holders: Vec<RoleId> = potential
        .policy
        .pa()
        .filter(|&(r, p)| p == required && idx.reach_entity(me, Entity::Role(r)))
        .map(|(r, _)| r)
        .collect();
    if holders.is_empty() {
        return Vec::new();
    }
    let toward_holder = |x: RoleId| {
        holders
            .iter()
            .any(|&h| idx.reach_entity(Entity::Role(x), Entity::Role(h)))
    };
    potential
        .addable
        .iter()
        .copied()
        .filter(|&edge| match edge {
            Edge::UserRole(u, x) => u == actor && toward_holder(x),
            Edge::RoleRole(x, y) => idx.reach_entity(me, Entity::Role(x)) && toward_holder(y),
            Edge::RolePriv(r, p) => p == required && idx.reach_entity(me, Entity::Role(r)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::reach::ReachIndex;
    use crate::safety::{perm_reachable, prepare_alphabet, ReachabilityAnswer, SafetyConfig};

    /// Two independent wings: jane can put bob into staff (reaching the
    /// goal), and mike can put ann into audit (irrelevant).
    fn two_wings() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("mike", "itops")
            .declare_user("bob")
            .declare_user("ann")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("audit", "read", "logs");
        let (bob, ann, staff, audit) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_user("ann").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_role("audit").unwrap(),
            )
        };
        let g1 = b.universe_mut().grant_user_role(bob, staff);
        let g2 = b.universe_mut().grant_user_role(ann, audit);
        b = b.assign_priv("hr", g1).assign_priv("itops", g2);
        b.finish()
    }

    #[test]
    fn cone_drops_the_irrelevant_wing() {
        let (mut uni, policy) = two_wings();
        let bob = uni.find_user("bob").unwrap();
        let ann = uni.find_user("ann").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let config = SafetyConfig::default();
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        let outcome = slice_alphabet(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            config.auth_mode,
        );
        assert!(outcome.shrunk(), "{} -> {}", outcome.before, outcome.after);
        let staff = uni.find_role("staff").unwrap();
        // The goal edge survives; the audit wing is gone entirely.
        assert!(outcome
            .alphabet
            .iter()
            .any(|(c, _)| c.edge == Edge::UserRole(bob, staff)));
        let audit = uni.find_role("audit").unwrap();
        assert!(!outcome
            .alphabet
            .iter()
            .any(|(c, _)| c.edge == Edge::UserRole(ann, audit)));
        // No revoke survives slicing, ever.
        assert!(outcome
            .alphabet
            .iter()
            .all(|(c, _)| c.kind == CommandKind::Grant));
    }

    #[test]
    fn sliced_and_unsliced_answers_agree_on_the_wings() {
        let (mut uni, policy) = two_wings();
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        for slice in [true, false] {
            let answer = perm_reachable(
                &mut uni,
                &policy,
                Entity::User(bob),
                write_t3,
                SafetyConfig {
                    slice,
                    ..SafetyConfig::default()
                },
            );
            let ReachabilityAnswer::Reachable { witness } = answer else {
                panic!("slice={slice}: expected reachable");
            };
            assert_eq!(witness.len(), 1, "slice={slice}");
        }
    }

    #[test]
    fn empty_cone_empties_the_alphabet_and_refutes_fast() {
        let (mut uni, policy) = two_wings();
        let bob = uni.find_user("bob").unwrap();
        let never = uni.perm("launch", "missiles");
        let target = uni.priv_perm(never);
        let config = SafetyConfig::default();
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        let outcome = slice_alphabet(
            &uni,
            &policy,
            &alphabet,
            Entity::User(bob),
            target,
            config.auth_mode,
        );
        assert_eq!(outcome.after, 0, "{:?}", outcome.alphabet);
        // The sliced bounded search refutes immediately, no escalation
        // machinery needed.
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(bob),
            never,
            SafetyConfig {
                max_states: 1,
                escalate: false,
                ..config
            },
        );
        assert!(
            matches!(answer, ReachabilityAnswer::Unreachable),
            "{answer:?}"
        );
    }

    #[test]
    fn support_includes_delegated_authorization_paths() {
        // joe's goal grant is held by hr2, and bob only reaches hr2 via
        // jane's ¤(bob, hr2): the support closure must keep jane's
        // command even though its edge is not on any goal path.
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .declare_user("joe")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, joe, staff, hr2) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_user("joe").unwrap(),
                u.find_role("staff").unwrap(),
                u.role("hr2"),
            )
        };
        let g1 = b.universe_mut().grant_user_role(bob, hr2);
        let g2 = b.universe_mut().grant_user_role(joe, staff);
        b = b.assign_priv("hr", g1);
        let (mut uni, mut policy) = b.finish();
        policy.add_edge(Edge::RolePriv(hr2, g2));
        let write_t3 = uni.perm("write", "t3");
        let target = uni.priv_perm(write_t3);
        let config = SafetyConfig::default();
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        let outcome = slice_alphabet(
            &uni,
            &policy,
            &alphabet,
            Entity::User(joe),
            target,
            config.auth_mode,
        );
        assert!(outcome
            .alphabet
            .iter()
            .any(|(c, _)| c.edge == Edge::UserRole(bob, hr2)));
        // And the two-step plan still goes through sliced.
        let answer = perm_reachable(
            &mut uni,
            &policy,
            Entity::User(joe),
            write_t3,
            SafetyConfig::default(),
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("expected reachable");
        };
        assert_eq!(witness.len(), 2);
        let _ = ReachIndex::build(&uni, &policy);
    }
}
