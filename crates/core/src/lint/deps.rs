//! Rule sites, per-rule may-add/may-remove summaries, and the static
//! privilege-dependency graph.
//!
//! A *rule site* is one occurrence of an administrative term in the
//! policy: either a `(role, term)` privilege assignment, or a term
//! nested inside one (e.g. the `¤(u, r)` inside `¤(aud → ¤(u, r))`).
//! Each site denotes a family of commands (one per actor) with a fixed
//! effect edge, so edge-level diagnostics attach naturally to sites.
//!
//! The dependency graph records, per administrative term:
//!
//! * `may_add` / `may_remove` — the effect edges executing the term (and
//!   the rules it transitively introduces) can add or remove;
//! * `enables` — the administrative terms whose *assignment* the term
//!   can create, i.e. `t enables u` iff some may-add edge of `t` is
//!   `RolePriv(_, u)` with `u` administrative.
//!
//! Both are purely syntactic over the finite edge universe — no search.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{PrivId, RoleId};
use crate::policy::Policy;
use crate::universe::{Edge, PrivTerm, Universe};

/// One occurrence of an administrative term in the policy.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RuleSite {
    /// The role whose assignment the occurrence sits under.
    pub role: RoleId,
    /// The top-level assigned term (equals `term` at depth 0).
    pub assigned: PrivId,
    /// The administrative term this site denotes.
    pub term: PrivId,
    /// Nesting depth: 0 for the assignment itself.
    pub depth: u32,
}

/// Enumerates every rule site of `root`, outermost first, in the
/// deterministic `(role, assigned)` iteration order of the policy.
pub fn rule_sites(universe: &Universe, root: &Policy) -> Vec<RuleSite> {
    let mut sites = Vec::new();
    for (role, assigned) in root.pa() {
        if !universe.term(assigned).is_administrative() {
            continue;
        }
        let mut stack = vec![(assigned, 0u32)];
        while let Some((term, depth)) = stack.pop() {
            sites.push(RuleSite {
                role,
                assigned,
                term,
                depth,
            });
            if let Some(Edge::RolePriv(_, inner)) = universe.term(term).edge() {
                if universe.term(inner).is_administrative() {
                    stack.push((inner, depth + 1));
                }
            }
        }
    }
    sites
}

/// The static privilege-dependency graph over the policy's rules.
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Per administrative term: edges it may (transitively) add.
    pub may_add: BTreeMap<PrivId, BTreeSet<Edge>>,
    /// Per administrative term: edges it may (transitively) remove.
    pub may_remove: BTreeMap<PrivId, BTreeSet<Edge>>,
    /// `t → {u}`: executing `t`'s rules can make `u` assigned.
    pub enables: BTreeMap<PrivId, BTreeSet<PrivId>>,
}

impl DependencyGraph {
    /// Builds the graph for every administrative term occurring in
    /// `root` (at any nesting depth).
    pub fn build(universe: &Universe, root: &Policy) -> DependencyGraph {
        let mut graph = DependencyGraph::default();
        for site in rule_sites(universe, root) {
            graph.close_term(universe, site.term);
        }
        graph
    }

    /// The terms that can (transitively) introduce an assignment of
    /// `target` — the reverse of `enables`, plus `target`'s own sites.
    pub fn enablers_of(&self, target: PrivId) -> BTreeSet<PrivId> {
        self.enables
            .iter()
            .filter(|(_, enabled)| enabled.contains(&target))
            .map(|(&t, _)| t)
            .collect()
    }

    /// Computes (and memoizes) the summaries for `term` and everything
    /// it transitively introduces.
    fn close_term(&mut self, universe: &Universe, term: PrivId) {
        if self.may_add.contains_key(&term) {
            return;
        }
        // Seed the entry first so nested cycles terminate (term ids are
        // hash-consed; a term cannot strictly contain itself, but two
        // mutually nesting grants are representable through the stack).
        self.may_add.insert(term, BTreeSet::new());
        self.may_remove.insert(term, BTreeSet::new());
        self.enables.insert(term, BTreeSet::new());
        let mut adds = BTreeSet::new();
        let mut removes = BTreeSet::new();
        let mut enables = BTreeSet::new();
        match universe.term(term) {
            PrivTerm::Perm(_) => {}
            PrivTerm::Grant(edge) => {
                adds.insert(edge);
                if let Edge::RolePriv(_, inner) = edge {
                    if universe.term(inner).is_administrative() {
                        enables.insert(inner);
                        self.close_term(universe, inner);
                        if let Some(inner_adds) = self.may_add.get(&inner) {
                            adds.extend(inner_adds.iter().copied());
                        }
                        if let Some(inner_removes) = self.may_remove.get(&inner) {
                            removes.extend(inner_removes.iter().copied());
                        }
                        if let Some(inner_enables) = self.enables.get(&inner) {
                            enables.extend(inner_enables.iter().copied());
                        }
                    }
                }
            }
            PrivTerm::Revoke(edge) => {
                removes.insert(edge);
            }
        }
        self.may_add.insert(term, adds);
        self.may_remove.insert(term, removes);
        self.enables.insert(term, enables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    #[test]
    fn nested_grant_summaries_are_transitive() {
        // ops holds ¤(aud → ¤(erin, temps)): executing it may add the
        // assignment edge and, transitively, (erin, temps); it enables
        // the inner grant term.
        let mut b = PolicyBuilder::new()
            .assign("olga", "ops")
            .declare_user("erin");
        let (erin, temps, aud) = {
            let u = b.universe_mut();
            (u.find_user("erin").unwrap(), u.role("temps"), u.role("aud"))
        };
        let inner = b.universe_mut().grant_user_role(erin, temps);
        let outer = b.universe_mut().priv_grant(Edge::RolePriv(aud, inner));
        b = b.assign_priv("ops", outer);
        let (uni, policy) = b.finish();

        let sites = rule_sites(&uni, &policy);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].depth, 0);
        assert_eq!(sites[1].depth, 1);
        assert_eq!(sites[1].term, inner);

        let graph = DependencyGraph::build(&uni, &policy);
        let adds = &graph.may_add[&outer];
        assert!(adds.contains(&Edge::RolePriv(aud, inner)));
        assert!(adds.contains(&Edge::UserRole(erin, temps)));
        assert!(graph.enables[&outer].contains(&inner));
        assert_eq!(graph.enablers_of(inner).len(), 1);
        assert!(graph.may_remove[&outer].is_empty());
    }
}
