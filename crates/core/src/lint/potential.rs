//! The *potential policy* `Φ⁺`: the may-add closure of the root.
//!
//! Every policy reachable from the root by authorized commands is a
//! subset of `Φ⁺ = lfp(E ↦ root ∪ {e | grant e is a candidate and some
//! assigned term in E authorizes it})`:
//!
//! * the root is trivially contained;
//! * a grant of edge `e` executes only when its actor reaches a term
//!   authorizing `¤(e)` in the *current* policy — inductively a subset
//!   of the closure-so-far, so `¤(e)` (or a `⊑`-compatible term, in
//!   ordered mode) is assigned in the closure and `e` is in `Φ⁺`;
//! * revokes only remove edges.
//!
//! The closure deliberately ignores *actor reachability* — it asks
//! whether an authorizing term is assigned at all, not whether some
//! user reaches it — which keeps it a pure term-level over-approximation
//! computable without search. In ordered mode the `⊑` queries are
//! evaluated against the maximal syntactic policy (root plus every
//! candidate edge): `⊑φ` is monotone in the edge set, so that too only
//! over-approximates.
//!
//! [`Potential::index`] is a [`ReachIndex`] over `Φ⁺`, giving
//! conservative reachability for every reachable policy at once: if
//! `v →φ v′` in some reachable `φ`, then `v → v′` in `Φ⁺`.

use std::collections::BTreeSet;

use crate::command::CommandKind;
use crate::ids::PrivId;
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::transition::AuthMode;
use crate::universe::{Edge, PrivTerm, Universe};

/// The may-add closure of a root policy, with its reachability index.
#[derive(Clone, Debug)]
pub struct Potential {
    /// `Φ⁺` itself: root edges plus every addable edge.
    pub policy: Policy,
    /// Reachability over `Φ⁺` (conservative for every reachable policy).
    pub index: ReachIndex,
    /// Terms assigned somewhere in `Φ⁺` (targets of `RolePriv` edges).
    pub assigned: BTreeSet<PrivId>,
    /// Edges in `Φ⁺` that are not in the root.
    pub addable: BTreeSet<Edge>,
}

impl Potential {
    /// Builds `Φ⁺` from the policy's own syntax: the candidate edges are
    /// everything nested inside assigned administrative terms (exactly
    /// the edge universe [`crate::simulation::command_alphabet`] uses).
    pub fn from_policy(universe: &Universe, root: &Policy, auth_mode: AuthMode) -> Potential {
        let mut candidates: BTreeSet<Edge> = BTreeSet::new();
        for p in root.priv_vertices() {
            if universe.term(p).is_administrative() {
                candidates.extend(universe.edges_within(p));
            }
        }
        let grants: Vec<(Edge, Option<PrivId>)> = candidates
            .into_iter()
            .map(|e| (e, universe.find_term(PrivTerm::Grant(e))))
            .collect();
        Potential::close(universe, root, &grants, auth_mode)
    }

    /// Builds `Φ⁺` relative to a prepared command alphabet: the
    /// candidates are the alphabet's grant commands with their required
    /// terms. Used by [`crate::lint::slice_alphabet`], where the
    /// alphabet may be larger than the policy's own syntax (ordered
    /// mode expands it with `⊑`-weaker edges).
    pub fn from_alphabet(
        universe: &Universe,
        root: &Policy,
        alphabet: &[(crate::command::Command, PrivId)],
        auth_mode: AuthMode,
    ) -> Potential {
        let mut grants: Vec<(Edge, Option<PrivId>)> = alphabet
            .iter()
            .filter(|(cmd, _)| cmd.kind == CommandKind::Grant)
            .map(|&(cmd, required)| (cmd.edge, Some(required)))
            .collect();
        grants.sort_unstable();
        grants.dedup();
        Potential::close(universe, root, &grants, auth_mode)
    }

    /// The least-fixpoint closure over `(edge, required ¤-term)`
    /// candidates. A `None` term means the grant term was never interned
    /// and so cannot be assigned anywhere — the edge is not addable.
    fn close(
        universe: &Universe,
        root: &Policy,
        grants: &[(Edge, Option<PrivId>)],
        auth_mode: AuthMode,
    ) -> Potential {
        // Maximal syntactic policy, for monotone-sound ⊑ queries.
        let order_policy;
        let order = match auth_mode {
            AuthMode::Explicit => None,
            AuthMode::Ordered(mode) => {
                let mut max = root.clone();
                for &(e, _) in grants {
                    max.add_edge(e);
                }
                order_policy = max;
                Some(PrivilegeOrder::new(universe, &order_policy, mode))
            }
        };
        let mut policy = root.clone();
        let mut assigned: BTreeSet<PrivId> =
            policy.pa().map(|(_, p)| p).collect::<BTreeSet<PrivId>>();
        let mut addable: BTreeSet<Edge> = BTreeSet::new();
        loop {
            let mut grew = false;
            for &(edge, required) in grants {
                if policy.contains_edge(edge) {
                    continue;
                }
                let authorized = match required {
                    None => false,
                    Some(t) => match &order {
                        None => assigned.contains(&t),
                        Some(order) => assigned.iter().any(|&w| {
                            universe.term(w).is_administrative() && order.is_weaker(w, t)
                        }),
                    },
                };
                if !authorized {
                    continue;
                }
                policy.add_edge(edge);
                addable.insert(edge);
                if let Edge::RolePriv(_, p) = edge {
                    assigned.insert(p);
                }
                grew = true;
            }
            if !grew {
                break;
            }
        }
        let index = ReachIndex::build(universe, &policy);
        Potential {
            policy,
            index,
            assigned,
            addable,
        }
    }

    /// Is `term` assigned anywhere in `Φ⁺`?
    pub fn is_assigned(&self, term: PrivId) -> bool {
        self.assigned.contains(&term)
    }

    /// Total edges in `Φ⁺`.
    pub fn edge_count(&self) -> usize {
        self.policy.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Entity;
    use crate::policy::PolicyBuilder;

    /// jane∈hr holds ¤(bob, staff); staff → dbusr2 → (write, t3).
    fn fixture() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn closure_adds_exactly_the_grantable_edge() {
        let (mut uni, policy) = fixture();
        let p = Potential::from_policy(&uni, &policy, AuthMode::Explicit);
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        assert_eq!(
            p.addable.iter().copied().collect::<Vec<_>>(),
            vec![Edge::UserRole(bob, staff)]
        );
        // Conservative reachability: bob reaches (write, t3) in Φ⁺ even
        // though he reaches nothing in the root.
        let write_t3 = uni.perm("write", "t3");
        let target = uni.find_term(PrivTerm::Perm(write_t3)).unwrap();
        assert!(p.index.reach_priv(Entity::User(bob), target));
        assert!(!ReachIndex::build(&uni, &policy).reach_priv(Entity::User(bob), target));
    }

    #[test]
    fn unassigned_grant_terms_are_not_addable() {
        // A rule nested only inside a revoke term is never assigned by
        // the closure: ops holds ♦(aud → ¤(erin, temps)). The inner
        // assignment edge is a candidate syntactically, but nothing
        // assigns ¤ of it, so Φ⁺ = root.
        let mut b = PolicyBuilder::new()
            .assign("olga", "ops")
            .assign("erin", "temps");
        let (erin, temps, aud) = {
            let u = b.universe_mut();
            (
                u.find_user("erin").unwrap(),
                u.find_role("temps").unwrap(),
                u.role("aud"),
            )
        };
        let inner = b.universe_mut().grant_user_role(erin, temps);
        let outer = b.universe_mut().priv_revoke(Edge::RolePriv(aud, inner));
        b = b.assign_priv("ops", outer);
        let (uni, policy) = b.finish();
        let p = Potential::from_policy(&uni, &policy, AuthMode::Explicit);
        assert!(p.addable.is_empty(), "{:?}", p.addable);
        assert!(!p.is_assigned(inner));
    }
}
