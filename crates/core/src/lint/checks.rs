//! The lint checks: search-free diagnostics over `(root, Φ⁺)`.
//!
//! Every check is a pure function of the root policy, the may-add
//! closure [`Potential`], and the [`DependencyGraph`] — no state-space
//! search anywhere. Each check documents the exact (conservative)
//! condition it fires on; all of them are vacuously quiet on policies
//! whose rules are all live, authorized and non-overlapping, which is
//! what keeps `fixtures/hospital.rbac` finding-free.

use std::collections::BTreeSet;

use crate::display::{priv_to_string, Notation};
use crate::ids::{Entity, PrivId, RoleId, UserId};
use crate::ordering::PrivilegeOrder;
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::transition::AuthMode;
use crate::universe::{Edge, PrivTerm, Universe};

use super::deps::{rule_sites, DependencyGraph, RuleSite};
use super::findings::{Confirmation, Finding, FindingKind, Severity};
use super::potential::Potential;
use super::LintConfig;

/// Runs every check and returns the (unsorted) findings.
pub(super) fn run_checks(
    universe: &Universe,
    root: &Policy,
    potential: &Potential,
    graph: &DependencyGraph,
    config: &LintConfig,
) -> Vec<Finding> {
    let sites = rule_sites(universe, root);
    let root_index = ReachIndex::build(universe, root);
    let mut findings = Vec::new();
    dead_commands(universe, root, potential, &sites, &mut findings);
    unauthorizable(universe, potential, config.auth_mode, &sites, &mut findings);
    redundant_grants(universe, root, &root_index, &mut findings);
    shadowed_grants(universe, root, potential, &mut findings);
    non_monotone_islands(universe, root, potential, &mut findings);
    sod_conflicts(
        universe,
        potential,
        graph,
        &root_index,
        config,
        &mut findings,
    );
    findings
}

/// A rule is **dead** when no reachable policy changes under it:
///
/// * a grant of an edge already in the root that no reachable policy
///   can remove (no `♦` of it is assigned anywhere in `Φ⁺`) is a
///   permanent no-op;
/// * a revoke of an edge that is neither in the root nor addable can
///   never find its edge present.
fn dead_commands(
    universe: &Universe,
    root: &Policy,
    potential: &Potential,
    sites: &[RuleSite],
    findings: &mut Vec<Finding>,
) {
    for site in sites {
        match universe.term(site.term) {
            PrivTerm::Perm(_) => {}
            PrivTerm::Grant(edge) => {
                let removable = universe
                    .find_term(PrivTerm::Revoke(edge))
                    .is_some_and(|t| potential.is_assigned(t));
                if root.contains_edge(edge) && !removable {
                    findings.push(Finding {
                        kind: FindingKind::DeadCommand,
                        severity: Severity::Warning,
                        role: site.role,
                        term: Some(site.term),
                        edge: Some(edge),
                        confirmation: None,
                        message: "grants an edge already in the policy that no reachable \
                                  policy can remove; the rule is a permanent no-op"
                            .to_string(),
                    });
                }
            }
            PrivTerm::Revoke(edge) => {
                if !potential.policy.contains_edge(edge) {
                    findings.push(Finding {
                        kind: FindingKind::DeadCommand,
                        severity: Severity::Warning,
                        role: site.role,
                        term: Some(site.term),
                        edge: Some(edge),
                        confirmation: None,
                        message: "revokes an edge that is neither in the policy nor \
                                  addable by any rule; the edge is never present"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// A rule is **statically unauthorizable** when no `⊑`-compatible
/// authorizing term for it is assigned anywhere in `Φ⁺`: its command
/// can never execute, under any actor, in any reachable policy.
/// Assigned (depth-0) rules authorize themselves, so this fires only on
/// nested rules the closure never surfaces — e.g. a grant nested inside
/// a revoke term.
fn unauthorizable(
    universe: &Universe,
    potential: &Potential,
    auth_mode: AuthMode,
    sites: &[RuleSite],
    findings: &mut Vec<Finding>,
) {
    let order = match auth_mode {
        AuthMode::Explicit => None,
        AuthMode::Ordered(mode) => Some(PrivilegeOrder::new(universe, &potential.policy, mode)),
    };
    for site in sites {
        let authorized = match &order {
            None => potential.is_assigned(site.term),
            Some(order) => potential
                .assigned
                .iter()
                .any(|&w| universe.term(w).is_administrative() && order.is_weaker(w, site.term)),
        };
        if !authorized {
            findings.push(Finding {
                kind: FindingKind::Unauthorizable,
                severity: Severity::Warning,
                role: site.role,
                term: Some(site.term),
                edge: universe.term(site.term).edge(),
                confirmation: None,
                message: "no ⊑-compatible authorizing term is ever assigned in the \
                          may-add closure; this rule can never be executed"
                    .to_string(),
            });
        }
    }
}

/// A privilege assignment `(r, t)` is **redundant** when another role
/// `r′ ≠ r` holds the same term and `r` already reaches `r′` through
/// the root role hierarchy: removing the direct assignment changes no
/// authorization decision.
fn redundant_grants(
    universe: &Universe,
    root: &Policy,
    root_index: &ReachIndex,
    findings: &mut Vec<Finding>,
) {
    let pa: Vec<(RoleId, PrivId)> = root.pa().collect();
    for &(r, t) in &pa {
        let via = pa.iter().find(|&&(r2, t2)| {
            t2 == t && r2 != r && root_index.reach_entity(Entity::Role(r), Entity::Role(r2))
        });
        if let Some(&(r2, _)) = via {
            findings.push(Finding {
                kind: FindingKind::RedundantGrant,
                severity: Severity::Note,
                role: r,
                term: Some(t),
                edge: Some(Edge::RolePriv(r, t)),
                confirmation: None,
                message: format!(
                    "role '{}' already reaches this term through junior role '{}'; \
                     the direct assignment is redundant",
                    universe.role_name(r),
                    universe.role_name(r2)
                ),
            });
        }
    }
}

/// A grant rule is **revoke-shadowed** when `Φ⁺` assigns a revoke of
/// the rule's own assignment edge: a reachable revocation can strip the
/// rule before it is ever used, so nothing it promises is stable.
///
/// The must/may interval sharpens the verdict: when the stripping
/// assignment already sits in the **root** policy the shadow is
/// `Confirmed` (one command strips the rule today); when it is merely
/// addable somewhere in `Φ⁺` it is `Potential`. A rule whose revoke is
/// never authorizable does not fire at all — the grant is frozen and
/// shadowing is impossible.
fn shadowed_grants(
    universe: &Universe,
    root: &Policy,
    potential: &Potential,
    findings: &mut Vec<Finding>,
) {
    for (r, t) in root.pa() {
        if !matches!(universe.term(t), PrivTerm::Grant(_)) {
            continue;
        }
        let rule_edge = Edge::RolePriv(r, t);
        let Some(rev) = universe.find_term(PrivTerm::Revoke(rule_edge)) else {
            continue;
        };
        if !potential.is_assigned(rev) {
            continue;
        }
        let in_root = root.pa().any(|(_, t2)| t2 == rev);
        let (confirmation, message) = if in_root {
            (
                Confirmation::Confirmed,
                "a revocation assigned in the root policy can strip this grant rule \
                 from the role before it is used",
            )
        } else {
            (
                Confirmation::Potential,
                "a reachable revocation can strip this grant rule from the role \
                 before it is used",
            )
        };
        findings.push(Finding {
            kind: FindingKind::ShadowedGrant,
            severity: Severity::Warning,
            role: r,
            term: Some(t),
            edge: Some(rule_edge),
            confirmation: Some(confirmation),
            message: message.to_string(),
        });
    }
}

/// **Non-monotone islands**: the revoke-term assignments that keep (or
/// would keep) the instance off the monotone saturation fast path (see
/// [`crate::verify::is_monotone`]), pinpointed:
///
/// * *dead island* (warning) — a root assignment of a revoke term whose
///   rule is dead: it blocks saturation and can never fire, so deleting
///   it makes the instance grow-only for free;
/// * *latent island* (note) — the root is grow-only, but an addable
///   edge would assign a revoke term, ending saturation's applicability
///   the moment it lands.
fn non_monotone_islands(
    universe: &Universe,
    root: &Policy,
    potential: &Potential,
    findings: &mut Vec<Finding>,
) {
    let revoke_assignment = |edge: Edge| match edge {
        Edge::RolePriv(r, p) => match universe.term(p) {
            PrivTerm::Revoke(effect) => Some((r, p, effect)),
            _ => None,
        },
        _ => None,
    };
    let root_grow_only = !root.edges().any(|e| revoke_assignment(e).is_some());
    for edge in potential.policy.edges() {
        let Some((r, p, effect)) = revoke_assignment(edge) else {
            continue;
        };
        if root.contains_edge(edge) {
            if !potential.policy.contains_edge(effect) {
                findings.push(Finding {
                    kind: FindingKind::NonMonotoneIsland,
                    severity: Severity::Warning,
                    role: r,
                    term: Some(p),
                    edge: Some(edge),
                    confirmation: None,
                    message: "this revoke rule blocks monotone saturation but can never \
                              fire (its edge is never present); deleting it makes the \
                              instance grow-only"
                        .to_string(),
                });
            }
        } else if root_grow_only {
            findings.push(Finding {
                kind: FindingKind::NonMonotoneIsland,
                severity: Severity::Note,
                role: r,
                term: Some(p),
                edge: Some(edge),
                confirmation: None,
                message: "the root policy is grow-only, but this addable edge would \
                          assign a revoke term and end monotone saturation's \
                          applicability"
                    .to_string(),
            });
        }
    }
}

/// **Separation-of-duty conflicts** over the caller-declared role pairs
/// (the same pairs [`crate::verify::specs::separation_of_duty`] checks
/// dynamically): a user who can statically reach both roles of a pair
/// in `Φ⁺` violates the constraint in some reachable policy — or in the
/// root itself.
///
/// Severity is interval-sharpened: a co-holding witnessed by the root
/// policy itself is `Confirmed` and an **error** (the live state
/// violates the constraint); a co-holding that only exists somewhere in
/// the may-add closure is `Potential` and a **warning** (some
/// authorized command sequence could introduce it).
fn sod_conflicts(
    universe: &Universe,
    potential: &Potential,
    graph: &DependencyGraph,
    root_index: &ReachIndex,
    config: &LintConfig,
    findings: &mut Vec<Finding>,
) {
    for &(a, b) in &config.sod_pairs {
        for u in universe.users() {
            let reaches = |idx: &ReachIndex| {
                idx.reach_entity(Entity::User(u), Entity::Role(a))
                    && idx.reach_entity(Entity::User(u), Entity::Role(b))
            };
            if !reaches(&potential.index) {
                continue;
            }
            let confirmed = reaches(root_index);
            let message = if confirmed {
                format!(
                    "user '{}' reaches both '{}' and '{}' in the root policy itself",
                    universe.user_name(u),
                    universe.role_name(a),
                    universe.role_name(b)
                )
            } else {
                let enablers = enabling_rules(universe, potential, graph, u, a, b);
                format!(
                    "user '{}' can statically reach both '{}' and '{}' via grantable \
                     edges{}",
                    universe.user_name(u),
                    universe.role_name(a),
                    universe.role_name(b),
                    render_enablers(universe, &enablers)
                )
            };
            findings.push(Finding {
                kind: FindingKind::SodConflict,
                severity: if confirmed {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                role: a,
                term: None,
                edge: None,
                confirmation: Some(if confirmed {
                    Confirmation::Confirmed
                } else {
                    Confirmation::Potential
                }),
                message,
            });
        }
    }
}

/// The rule terms whose may-add summaries contain an addable edge that
/// advances `u` toward `a` or `b` in `Φ⁺` — the rules to look at first
/// when breaking the conflict.
fn enabling_rules(
    universe: &Universe,
    potential: &Potential,
    graph: &DependencyGraph,
    u: UserId,
    a: RoleId,
    b: RoleId,
) -> BTreeSet<PrivId> {
    let idx = &potential.index;
    let toward = |x: RoleId| {
        idx.reach_entity(Entity::Role(x), Entity::Role(a))
            || idx.reach_entity(Entity::Role(x), Entity::Role(b))
    };
    let relevant = |edge: Edge| match edge {
        Edge::UserRole(u2, x) => u2 == u && toward(x),
        Edge::RoleRole(x, y) => idx.reach_entity(Entity::User(u), Entity::Role(x)) && toward(y),
        Edge::RolePriv(..) => false,
    };
    let _ = universe;
    graph
        .may_add
        .iter()
        .filter(|(_, adds)| {
            adds.iter()
                .any(|&e| potential.addable.contains(&e) && relevant(e))
        })
        .map(|(&t, _)| t)
        .collect()
}

fn render_enablers(universe: &Universe, enablers: &BTreeSet<PrivId>) -> String {
    if enablers.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = enablers
        .iter()
        .map(|&t| format!("'{}'", priv_to_string(universe, t, Notation::Ascii)))
        .collect();
    format!("; enabled by rule(s) {}", rendered.join(", "))
}
