//! Typed lint findings with severity, location and rendering.
//!
//! A [`Finding`] points at a *rule site* — a `(role, term)` privilege
//! assignment in the linted policy, possibly a term nested inside one —
//! plus the effect edge when the diagnostic is about a specific edge.
//! [`LintReport`] carries the full pass result with deterministic
//! ordering, so its JSON rendering is byte-stable and CI can diff it.

use crate::display::{edge_to_string, priv_to_string, Notation};
use crate::ids::{PrivId, RoleId};
use crate::universe::{Edge, Universe};

/// How serious a finding is. Ordered: `Note < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Stylistic or informational; the policy behaves as written.
    Note,
    /// The policy almost certainly does not mean what it says.
    Warning,
    /// A declared property (e.g. separation of duty) is violated.
    Error,
}

impl Severity {
    /// Stable lowercase name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the stable name back (for `--deny <severity>`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// The category of a finding. See [`crate::lint`] for the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FindingKind {
    /// The rule can never change any reachable policy.
    DeadCommand,
    /// No `⊑`-compatible authorizing term is ever assigned, so the
    /// rule's command can never be executed.
    Unauthorizable,
    /// The role already reaches the same privilege through the role
    /// hierarchy; the direct assignment adds nothing.
    RedundantGrant,
    /// A revoke rule in the may-add closure can strip this assignment.
    ShadowedGrant,
    /// A revoke-term assignment that keeps (or would keep) the instance
    /// off the monotone saturation fast path.
    NonMonotoneIsland,
    /// Some user can statically reach both roles of a declared
    /// separation-of-duty pair.
    SodConflict,
    /// An edge asserted frozen by an admission constraint is absent
    /// from the candidate policy, or some authorized command sequence
    /// can revoke it (it is not in the must-closure `Φ⁻`).
    FrozenEdgeViolation,
}

impl FindingKind {
    /// Stable kebab-case name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::DeadCommand => "dead-command",
            FindingKind::Unauthorizable => "unauthorizable",
            FindingKind::RedundantGrant => "redundant-grant",
            FindingKind::ShadowedGrant => "shadowed-grant",
            FindingKind::NonMonotoneIsland => "non-monotone-island",
            FindingKind::SodConflict => "sod-conflict",
            FindingKind::FrozenEdgeViolation => "frozen-edge-violation",
        }
    }
}

/// How certain a finding is, for the checks that can tell (currently
/// `sod-conflict`, `shadowed-grant` and the admission gate's
/// `frozen-edge-violation`): `Confirmed` means the condition holds in a
/// concrete witness state (the root/candidate policy itself), `Potential`
/// means it only holds somewhere in the may-add closure `Φ⁺`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Confirmation {
    /// Witnessed in the root (or candidate) policy itself.
    Confirmed,
    /// Reachable per the may-closure, but not witnessed in the root.
    Potential,
}

impl Confirmation {
    /// Stable lowercase name used in human and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Confirmation::Confirmed => "confirmed",
            Confirmation::Potential => "potential",
        }
    }
}

/// One diagnostic produced by the lint pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The category.
    pub kind: FindingKind,
    /// How serious it is.
    pub severity: Severity,
    /// The role whose privilege assignment anchors the finding.
    pub role: RoleId,
    /// The term at fault (the assigned term, or a term nested in one),
    /// when the finding is about a specific term.
    pub term: Option<PrivId>,
    /// The effect edge the diagnostic is about, when there is one.
    pub edge: Option<Edge>,
    /// How certain the finding is, for the checks that distinguish a
    /// witnessed violation from a merely reachable one (`None` for the
    /// checks where the distinction is meaningless).
    pub confirmation: Option<Confirmation>,
    /// A one-line, fully rendered explanation.
    pub message: String,
}

/// The result of a full lint pass, deterministically ordered.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by `(kind, role, term, edge)`.
    pub findings: Vec<Finding>,
    /// Rule sites examined (assigned administrative terms plus the
    /// administrative terms nested inside them).
    pub rules_checked: usize,
    /// Edges in the may-add closure `Φ⁺` (root plus addable).
    pub closure_edges: usize,
}

impl LintReport {
    /// The most severe finding, or `None` on a clean policy.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// How many findings are at or above `floor`.
    pub fn count_at_or_above(&self, floor: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity >= floor).count()
    }

    /// How many findings carry exactly `severity`.
    pub fn count_of(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Sorts findings into the canonical order. Called by the pass; a
    /// sorted report renders byte-identically across runs.
    pub(crate) fn canonicalize(&mut self) {
        self.findings
            .sort_by_key(|f| (f.kind, f.role, f.term, f.edge));
    }

    /// Renders the report as deterministic JSON (no trailing newline).
    ///
    /// `source` labels the linted policy (the CLI passes the file path
    /// verbatim). The schema is hand-rolled and stable so CI lanes can
    /// byte-diff the output against a pinned expectation.
    pub fn to_json(&self, universe: &Universe, source: &str) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 2,\n");
        out.push_str(&format!("  \"policy\": \"{}\",\n", escape(source)));
        out.push_str(&format!("  \"rules_checked\": {},\n", self.rules_checked));
        out.push_str(&format!("  \"closure_edges\": {},\n", self.closure_edges));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            out.push_str(&format!("      \"severity\": \"{}\",\n", f.severity.name()));
            out.push_str(&format!("      \"kind\": \"{}\",\n", f.kind.name()));
            out.push_str(&format!(
                "      \"role\": \"{}\",\n",
                escape(universe.role_name(f.role))
            ));
            match f.term {
                Some(term) => out.push_str(&format!(
                    "      \"term\": \"{}\",\n",
                    escape(&priv_to_string(universe, term, Notation::Ascii))
                )),
                None => out.push_str("      \"term\": null,\n"),
            }
            match f.edge {
                Some(edge) => out.push_str(&format!(
                    "      \"edge\": \"{}\",\n",
                    escape(&edge_to_string(universe, edge, Notation::Ascii))
                )),
                None => out.push_str("      \"edge\": null,\n"),
            }
            match f.confirmation {
                Some(c) => out.push_str(&format!("      \"confirmation\": \"{}\",\n", c.name())),
                None => out.push_str("      \"confirmation\": null,\n"),
            }
            out.push_str(&format!("      \"message\": \"{}\"\n", escape(&f.message)));
            out.push_str("    }");
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"counts\": {{\"note\": {}, \"warning\": {}, \"error\": {}}}\n",
            self.count_of(Severity::Note),
            self.count_of(Severity::Warning),
            self.count_of(Severity::Error)
        ));
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping for names and messages.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_round_trips() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for s in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let uni = Universe::new();
        let report = LintReport::default();
        let json = report.to_json(&uni, "p.rbac");
        assert!(json.contains("\"findings\": [],"), "{json}");
        assert!(json.contains("\"error\": 0"));
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
