//! Role-hierarchy closure: SCCs, transitive closure, longest chain.
//!
//! Footnote 3 of the paper deliberately does *not* assume `RH` is a partial
//! order, so the hierarchy may contain cycles. We compute strongly connected
//! components (iterative Tarjan), condense, and propagate closure bitsets in
//! the reverse-topological order Tarjan naturally emits. The longest chain
//! of `RH` (needed for the Remark 2 enumeration bound) is a longest-path
//! computation on the condensation.
//!
//! Closure rows are stored once per SCC behind an [`Arc`], so cloning a
//! closure is `O(|SCC|)` reference bumps and the incremental maintenance
//! entry points ([`add_edge_incremental`](RoleClosure::add_edge_incremental),
//! [`remove_edge_incremental`](RoleClosure::remove_edge_incremental))
//! copy-on-write only the rows an edge delta actually changes — the
//! substrate of the snapshot publisher's delta path.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::bitset::BitSet;

/// Whether an incremental closure update applied, or the structure
/// changed in a way that needs a from-scratch rebuild.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClosureDelta {
    /// The delta was applied in place; the closure is exact.
    Applied,
    /// The delta would merge or split SCCs (a cycle formed or an
    /// intra-SCC edge vanished) or exceed the fan-out cap; the caller
    /// must rebuild with [`RoleClosure::build`].
    Rebuild,
}

/// Transitive-closure index over a role graph with `n` roles.
///
/// Closure rows are stored once per SCC and shared by its members (and,
/// via [`Arc`], across snapshot epochs).
#[derive(Debug, Clone)]
pub struct RoleClosure {
    n: usize,
    /// SCC id of each role. `build` emits SCC ids in reverse topological
    /// order (sinks have low ids); incremental edge additions may relax
    /// that ordering, so maintenance code never relies on it. Behind an
    /// `Arc` because the partition only ever changes on a full rebuild —
    /// delta-derived closures share it with their parent outright.
    scc_of: Arc<Vec<u32>>,
    /// Closure row per SCC: all roles reachable from (any member of) the
    /// SCC, members included. The outer `Arc` makes cloning free for
    /// batches with no role-edge deltas; the inner `Arc`s share
    /// individual untouched rows across epochs when a delta does copy
    /// the table.
    rows: Arc<Vec<Arc<BitSet>>>,
    /// Longest chain measured in *roles* along any path of the condensation
    /// (an SCC of size k contributes k).
    longest_chain_roles: u32,
}

impl RoleClosure {
    /// Builds the closure from an edge list over roles `0..n`.
    pub fn build(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let edges: Vec<(u32, u32)> = edges.into_iter().collect();
        // Adjacency in CSR form for cache-friendly traversal.
        let mut degree = vec![0u32; n];
        for &(s, _) in &edges {
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adj = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (s, t) in edges {
            adj[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        let succ = |v: usize| &adj[offsets[v] as usize..offsets[v + 1] as usize];

        // Iterative Tarjan. SCCs are emitted sinks-first (reverse
        // topological order of the condensation).
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![0u32; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut scc_count = 0u32;
        let mut next_index = 0u32;
        // (vertex, next-child-offset) call frames.
        let mut frames: Vec<(u32, u32)> = Vec::new();

        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            frames.push((start as u32, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                let vs = v as usize;
                let children = succ(vs);
                if (*child as usize) < children.len() {
                    let w = children[*child as usize] as usize;
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        frames.push((w as u32, 0));
                    } else if on_stack[w] {
                        lowlink[vs] = lowlink[vs].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[vs]);
                    }
                    if lowlink[vs] == index[vs] {
                        // Root of an SCC: pop members.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = scc_count;
                            if w as usize == vs {
                                break;
                            }
                        }
                        scc_count += 1;
                    }
                }
            }
        }

        // SCC sizes and member bitsets.
        let c = scc_count as usize;
        let mut scc_size = vec![0u32; c];
        for v in 0..n {
            scc_size[scc_of[v] as usize] += 1;
        }

        // Closure rows, processed in Tarjan emission order (sinks first):
        // every inter-SCC edge goes from a higher SCC id to a lower one, so
        // a successor's row is final by the time we union it in.
        let mut rows: Vec<BitSet> = (0..c).map(|_| BitSet::new(n)).collect();
        let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); c];
        for v in 0..n {
            rows[scc_of[v] as usize].insert(v);
            members_of[scc_of[v] as usize].push(v as u32);
        }
        // Longest chain in roles: DP over the condensation.
        let mut chain = vec![0u32; c];
        for scc in 0..c {
            let mut best_succ_chain = 0u32;
            for &v in &members_of[scc] {
                for &w in succ(v as usize) {
                    let ws = scc_of[w as usize] as usize;
                    if ws != scc {
                        debug_assert!(ws < scc, "tarjan order violated");
                        let (left, right) = rows.split_at_mut(scc);
                        right[0].union_with(&left[ws]);
                        best_succ_chain = best_succ_chain.max(chain[ws]);
                    }
                }
            }
            chain[scc] = scc_size[scc] + best_succ_chain;
        }
        let longest_chain_roles = chain.iter().copied().max().unwrap_or(0);

        RoleClosure {
            n,
            scc_of: Arc::new(scc_of),
            rows: Arc::new(rows.into_iter().map(Arc::new).collect()),
            longest_chain_roles,
        }
    }

    // ----- incremental maintenance (the snapshot delta path) -----------

    /// Applies the addition of edge `a → b` in place.
    ///
    /// **Add-edge split lemma** (the same argument the bounded search's
    /// incremental goal check rests on): after adding `(a, b)`, a path
    /// `x →' y` exists iff `x → y` already held, or `x → a ∧ b → y` —
    /// every new path must cross the new edge exactly at `(a, b)` the
    /// first time it uses it. At closure-row granularity that is
    /// `row'(s) = row(s) ∪ row(scc(b))` for exactly the SCCs `s` whose
    /// row contains `a` (the reverse-reachability frontier of the new
    /// edge's source); all other rows are untouched and keep sharing
    /// their allocation with the parent epoch.
    ///
    /// Returns [`ClosureDelta::Rebuild`] when `b → a` already holds in a
    /// *different* SCC: the edge closes a new cycle, the SCC partition
    /// changes, and only a from-scratch build renumbers it correctly.
    /// An intra-SCC addition is a no-op (`Applied`): members of one SCC
    /// already reach one another.
    pub fn add_edge_incremental(&mut self, a: u32, b: u32) -> ClosureDelta {
        let (ai, bi) = (a as usize, b as usize);
        if ai >= self.n || bi >= self.n {
            return ClosureDelta::Rebuild;
        }
        if self.scc_of[ai] == self.scc_of[bi] {
            return ClosureDelta::Applied;
        }
        if self.rows[self.scc_of[bi] as usize].contains(ai) {
            // b already reaches a: the new edge merges SCCs.
            return ClosureDelta::Rebuild;
        }
        let row_b = Arc::clone(&self.rows[self.scc_of[bi] as usize]);
        for row in Arc::make_mut(&mut self.rows) {
            if row.contains(ai) && !row_b.is_subset(row) {
                Arc::make_mut(row).union_with(&row_b);
            }
        }
        ClosureDelta::Applied
    }

    /// Applies the removal of edge `a → b` in place, given `succ` — the
    /// role adjacency **after** the removal.
    ///
    /// Removal can only shrink rows of SCCs that currently reach `a`
    /// (every lost path crossed the removed edge). Each affected row is
    /// recomputed exactly by a BFS from the SCC's members over `succ`;
    /// unaffected rows keep sharing their allocation. When more than
    /// `max_affected` rows would need recomputing the targeted pass
    /// costs about as much as a rebuild, so the caller is told to
    /// rebuild instead ([`ClosureDelta::Rebuild`]); likewise when the
    /// removed edge was *inside* an SCC, since the SCC may split.
    pub fn remove_edge_incremental(
        &mut self,
        a: u32,
        b: u32,
        succ: &[BTreeSet<u32>],
        max_affected: usize,
    ) -> ClosureDelta {
        let (ai, bi) = (a as usize, b as usize);
        if ai >= self.n || bi >= self.n {
            return ClosureDelta::Rebuild;
        }
        if self.scc_of[ai] == self.scc_of[bi] {
            return ClosureDelta::Rebuild;
        }
        let affected: Vec<usize> = (0..self.rows.len())
            .filter(|&s| self.rows[s].contains(ai))
            .collect();
        if affected.len() > max_affected {
            return ClosureDelta::Rebuild;
        }
        let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); self.rows.len()];
        for v in 0..self.n {
            members_of[self.scc_of[v] as usize].push(v as u32);
        }
        let rows = Arc::make_mut(&mut self.rows);
        for s in affected {
            let mut row = BitSet::new(self.n);
            let mut queue: Vec<u32> = Vec::new();
            for &m in &members_of[s] {
                if row.insert(m as usize) {
                    queue.push(m);
                }
            }
            while let Some(v) = queue.pop() {
                for &w in &succ[v as usize] {
                    if row.insert(w as usize) {
                        queue.push(w);
                    }
                }
            }
            rows[s] = Arc::new(row);
        }
        ClosureDelta::Applied
    }

    /// Recomputes [`longest_chain_roles`](Self::longest_chain_roles)
    /// from `succ` (the current role adjacency) after a batch of
    /// incremental edge deltas. `O(|R| + |E| + |SCC|)`: a Kahn pass over
    /// the condensation plus the chain DP — no bitset traffic.
    pub fn recompute_longest_chain(&mut self, succ: &[BTreeSet<u32>]) {
        let c = self.rows.len();
        if c == 0 {
            self.longest_chain_roles = 0;
            return;
        }
        let mut scc_size = vec![0u32; c];
        for v in 0..self.n {
            scc_size[self.scc_of[v] as usize] += 1;
        }
        // Condensation edges (with multiplicity — Kahn only needs the
        // indegree bookkeeping to match).
        let mut scc_succ: Vec<Vec<u32>> = vec![Vec::new(); c];
        let mut indegree = vec![0u32; c];
        for (v, targets) in succ.iter().enumerate().take(self.n) {
            let sv = self.scc_of[v];
            for &w in targets {
                let sw = self.scc_of[w as usize];
                if sv != sw {
                    scc_succ[sv as usize].push(sw);
                    indegree[sw as usize] += 1;
                }
            }
        }
        let mut order: Vec<u32> = (0..c as u32)
            .filter(|&s| indegree[s as usize] == 0)
            .collect();
        let mut head = 0;
        while head < order.len() {
            let s = order[head] as usize;
            head += 1;
            for &t in &scc_succ[s] {
                indegree[t as usize] -= 1;
                if indegree[t as usize] == 0 {
                    order.push(t);
                }
            }
        }
        debug_assert_eq!(order.len(), c, "condensation must be acyclic");
        // Sinks-first DP: process the topological order in reverse.
        let mut chain = vec![0u32; c];
        for &s in order.iter().rev() {
            let s = s as usize;
            let best_succ = scc_succ[s].iter().map(|&t| chain[t as usize]).max();
            chain[s] = scc_size[s] + best_succ.unwrap_or(0);
        }
        self.longest_chain_roles = chain.iter().copied().max().unwrap_or(0);
    }

    /// Number of roles indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff no roles are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` iff role `from` reaches role `to` (reflexive).
    #[inline]
    pub fn reaches(&self, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        let (f, t) = (from as usize, to as usize);
        if f >= self.n || t >= self.n {
            return from == to;
        }
        self.rows[self.scc_of[f] as usize].contains(t)
    }

    /// The closure row of `role`: every role reachable from it, itself
    /// included.
    pub fn row(&self, role: u32) -> &BitSet {
        &self.rows[self.scc_of[role as usize] as usize]
    }

    /// Number of SCCs.
    pub fn scc_count(&self) -> usize {
        self.rows.len()
    }

    /// SCC id of a role (reverse topological: sinks get low ids).
    pub fn scc_of(&self, role: u32) -> u32 {
        self.scc_of[role as usize]
    }

    /// Longest chain of the hierarchy measured in roles (an acyclic path
    /// visiting `k` roles has chain length `k`; a cyclic SCC of size `s`
    /// contributes `s`).
    ///
    /// Remark 2 of the paper conjectures that `n` applications of rule (3)
    /// suffice where “`n` is the length of the longest chain in RH”; we
    /// expose both the role count and the edge count
    /// ([`RoleClosure::longest_chain_edges`]) so callers can pick the
    /// reading they need.
    pub fn longest_chain_roles(&self) -> u32 {
        self.longest_chain_roles
    }

    /// Longest chain measured in edges (`roles - 1`, saturating).
    pub fn longest_chain_edges(&self) -> u32 {
        self.longest_chain_roles.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closure(n: usize, edges: &[(u32, u32)]) -> RoleClosure {
        RoleClosure::build(n, edges.iter().copied())
    }

    #[test]
    fn empty_graph() {
        let c = closure(0, &[]);
        assert_eq!(c.scc_count(), 0);
        assert_eq!(c.longest_chain_roles(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> 3
        let c = closure(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(c.reaches(0, 3));
        assert!(c.reaches(1, 3));
        assert!(!c.reaches(3, 0));
        assert!(c.reaches(2, 2), "reflexive");
        assert_eq!(c.scc_count(), 4);
        assert_eq!(c.longest_chain_roles(), 4);
        assert_eq!(c.longest_chain_edges(), 3);
    }

    #[test]
    fn diamond() {
        // 0 -> {1,2} -> 3
        let c = closure(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(c.reaches(0, 3));
        assert!(!c.reaches(1, 2));
        assert_eq!(c.longest_chain_roles(), 3);
    }

    #[test]
    fn cycle_collapses_to_one_scc() {
        // 0 -> 1 -> 2 -> 0, plus 2 -> 3
        let c = closure(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(c.scc_of(0), c.scc_of(1));
        assert_eq!(c.scc_of(1), c.scc_of(2));
        assert_ne!(c.scc_of(0), c.scc_of(3));
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert!(c.reaches(a, b), "{a} should reach {b} inside the cycle");
            }
            assert!(c.reaches(a, 3));
        }
        assert!(!c.reaches(3, 0));
        assert_eq!(c.longest_chain_roles(), 4, "3-cycle + tail role");
    }

    #[test]
    fn self_loop_is_not_a_chain_extension() {
        let c = closure(2, &[(0, 0), (0, 1)]);
        assert!(c.reaches(0, 1));
        assert!(c.reaches(0, 0));
        assert_eq!(c.longest_chain_roles(), 2);
    }

    #[test]
    fn disconnected_components() {
        let c = closure(5, &[(0, 1), (3, 4)]);
        assert!(c.reaches(0, 1));
        assert!(!c.reaches(0, 3));
        assert!(!c.reaches(2, 0));
        assert!(c.reaches(2, 2));
        assert_eq!(c.longest_chain_roles(), 2);
    }

    #[test]
    fn out_of_range_roles_only_reach_themselves() {
        let c = closure(2, &[(0, 1)]);
        assert!(c.reaches(9, 9));
        assert!(!c.reaches(9, 0));
        assert!(!c.reaches(0, 9));
    }

    #[test]
    fn closure_matches_bfs_on_random_graphs() {
        // Deterministic pseudo-random graphs; compare against a naive BFS.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 5, 17, 40] {
            let mut edges = Vec::new();
            for _ in 0..(n * 2) {
                let a = (next() % n as u64) as u32;
                let b = (next() % n as u64) as u32;
                edges.push((a, b));
            }
            let c = closure(n, &edges);
            // Naive BFS per source.
            for s in 0..n as u32 {
                let mut seen = vec![false; n];
                let mut queue = vec![s];
                seen[s as usize] = true;
                while let Some(v) = queue.pop() {
                    for &(a, b) in &edges {
                        if a == v && !seen[b as usize] {
                            seen[b as usize] = true;
                            queue.push(b);
                        }
                    }
                }
                for t in 0..n as u32 {
                    assert_eq!(
                        c.reaches(s, t),
                        seen[t as usize] || s == t,
                        "n={n} s={s} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn rows_are_shared_within_scc() {
        let c = closure(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(c.row(0).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.row(1).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.row(2).iter().collect::<Vec<_>>(), vec![2]);
    }

    fn adjacency(n: usize, edges: &[(u32, u32)]) -> Vec<BTreeSet<u32>> {
        let mut succ = vec![BTreeSet::new(); n];
        for &(a, b) in edges {
            succ[a as usize].insert(b);
        }
        succ
    }

    /// Same reachability answers and observables, independent of SCC
    /// numbering.
    fn assert_equivalent(a: &RoleClosure, b: &RoleClosure, n: usize) {
        for x in 0..n as u32 {
            assert_eq!(a.row(x), b.row(x), "row of {x}");
        }
        assert_eq!(a.scc_count(), b.scc_count());
        assert_eq!(a.longest_chain_roles(), b.longest_chain_roles());
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        // 0 -> 1 -> 2, 3 -> 4; add 2 -> 3 (joins the chains).
        let base = vec![(0, 1), (1, 2), (3, 4)];
        let mut inc = closure(5, &base);
        assert_eq!(inc.add_edge_incremental(2, 3), ClosureDelta::Applied);
        let mut edges = base.clone();
        edges.push((2, 3));
        let succ = adjacency(5, &edges);
        inc.recompute_longest_chain(&succ);
        assert_equivalent(&inc, &closure(5, &edges), 5);
        assert_eq!(inc.longest_chain_roles(), 5);
        // Untouched rows still share their allocation with... the edge
        // only fans out to 0, 1, 2; role 4's row is the same Arc.
        assert!(inc.reaches(0, 4));
        assert!(!inc.reaches(4, 0));
    }

    #[test]
    fn incremental_add_detects_new_cycle() {
        let mut inc = closure(3, &[(0, 1), (1, 2)]);
        // 2 -> 0 closes a cycle: SCCs merge, rebuild required.
        assert_eq!(inc.add_edge_incremental(2, 0), ClosureDelta::Rebuild);
        // Intra-SCC additions are no-ops.
        let mut cyc = closure(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(cyc.add_edge_incremental(0, 1), ClosureDelta::Applied);
        assert_equivalent(&cyc, &closure(3, &[(0, 1), (1, 0), (1, 2)]), 3);
    }

    #[test]
    fn incremental_remove_matches_rebuild() {
        // Diamond 0 -> {1, 2} -> 3; removing 1 -> 3 keeps 0 -> 3 via 2.
        let base = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let mut inc = closure(4, &base);
        let after: Vec<(u32, u32)> = base.iter().copied().filter(|&e| e != (1, 3)).collect();
        let succ = adjacency(4, &after);
        assert_eq!(
            inc.remove_edge_incremental(1, 3, &succ, usize::MAX),
            ClosureDelta::Applied
        );
        inc.recompute_longest_chain(&succ);
        assert_equivalent(&inc, &closure(4, &after), 4);
        assert!(inc.reaches(0, 3), "still reachable via 2");
        assert!(!inc.reaches(1, 3));
    }

    #[test]
    fn incremental_remove_refuses_intra_scc_and_caps_fanout() {
        let mut cyc = closure(3, &[(0, 1), (1, 0), (1, 2)]);
        let succ = adjacency(3, &[(0, 1), (1, 2)]);
        assert_eq!(
            cyc.remove_edge_incremental(1, 0, &succ, usize::MAX),
            ClosureDelta::Rebuild,
            "intra-SCC removal may split the SCC"
        );
        // Fan-out cap: a chain removal affects every upstream row.
        let base = vec![(0, 1), (1, 2), (2, 3)];
        let mut chain = closure(4, &base);
        let succ = adjacency(4, &[(0, 1), (1, 2)]);
        assert_eq!(
            chain.remove_edge_incremental(2, 3, &succ, 1),
            ClosureDelta::Rebuild,
            "three affected rows exceed the cap of 1"
        );
    }

    #[test]
    fn incremental_sequence_stays_exact_without_canonical_scc_order() {
        // Interleave adds and removes so SCC ids drift from Tarjan's
        // canonical numbering, then compare against rebuilds throughout.
        let mut edges: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5)];
        let mut inc = closure(6, &edges);
        let script: &[(u32, u32, bool)] = &[
            (1, 2, true),
            (5, 0, true),
            (3, 4, true), // closes the 6-cycle: forces the rebuild path
            (2, 3, false),
            (1, 2, false),
            (0, 3, true),
        ];
        for &(a, b, add) in script {
            if add {
                edges.push((a, b));
                if inc.add_edge_incremental(a, b) == ClosureDelta::Rebuild {
                    inc = closure(6, &edges);
                } else {
                    inc.recompute_longest_chain(&adjacency(6, &edges));
                }
            } else {
                edges.retain(|&e| e != (a, b));
                let succ = adjacency(6, &edges);
                if inc.remove_edge_incremental(a, b, &succ, usize::MAX) == ClosureDelta::Rebuild {
                    inc = closure(6, &edges);
                } else {
                    inc.recompute_longest_chain(&succ);
                }
            }
            assert_equivalent(&inc, &closure(6, &edges), 6);
        }
    }
}
