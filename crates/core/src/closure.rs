//! Role-hierarchy closure: SCCs, transitive closure, longest chain.
//!
//! Footnote 3 of the paper deliberately does *not* assume `RH` is a partial
//! order, so the hierarchy may contain cycles. We compute strongly connected
//! components (iterative Tarjan), condense, and propagate closure bitsets in
//! the reverse-topological order Tarjan naturally emits. The longest chain
//! of `RH` (needed for the Remark 2 enumeration bound) is a longest-path
//! computation on the condensation.

use crate::bitset::BitSet;

/// Transitive-closure index over a role graph with `n` roles.
///
/// Closure rows are stored once per SCC and shared by its members.
#[derive(Debug, Clone)]
pub struct RoleClosure {
    n: usize,
    /// SCC id of each role (SCC ids are in reverse topological order:
    /// sinks have low ids).
    scc_of: Vec<u32>,
    /// Closure row per SCC: all roles reachable from (any member of) the
    /// SCC, members included.
    rows: Vec<BitSet>,
    /// Longest chain measured in *roles* along any path of the condensation
    /// (an SCC of size k contributes k).
    longest_chain_roles: u32,
}

impl RoleClosure {
    /// Builds the closure from an edge list over roles `0..n`.
    pub fn build(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let edges: Vec<(u32, u32)> = edges.into_iter().collect();
        // Adjacency in CSR form for cache-friendly traversal.
        let mut degree = vec![0u32; n];
        for &(s, _) in &edges {
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adj = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (s, t) in edges {
            adj[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        let succ = |v: usize| &adj[offsets[v] as usize..offsets[v + 1] as usize];

        // Iterative Tarjan. SCCs are emitted sinks-first (reverse
        // topological order of the condensation).
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![0u32; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut scc_count = 0u32;
        let mut next_index = 0u32;
        // (vertex, next-child-offset) call frames.
        let mut frames: Vec<(u32, u32)> = Vec::new();

        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            frames.push((start as u32, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start as u32);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                let vs = v as usize;
                let children = succ(vs);
                if (*child as usize) < children.len() {
                    let w = children[*child as usize] as usize;
                    *child += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        frames.push((w as u32, 0));
                    } else if on_stack[w] {
                        lowlink[vs] = lowlink[vs].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[vs]);
                    }
                    if lowlink[vs] == index[vs] {
                        // Root of an SCC: pop members.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            scc_of[w as usize] = scc_count;
                            if w as usize == vs {
                                break;
                            }
                        }
                        scc_count += 1;
                    }
                }
            }
        }

        // SCC sizes and member bitsets.
        let c = scc_count as usize;
        let mut scc_size = vec![0u32; c];
        for v in 0..n {
            scc_size[scc_of[v] as usize] += 1;
        }

        // Closure rows, processed in Tarjan emission order (sinks first):
        // every inter-SCC edge goes from a higher SCC id to a lower one, so
        // a successor's row is final by the time we union it in.
        let mut rows: Vec<BitSet> = (0..c).map(|_| BitSet::new(n)).collect();
        let mut members_of: Vec<Vec<u32>> = vec![Vec::new(); c];
        for v in 0..n {
            rows[scc_of[v] as usize].insert(v);
            members_of[scc_of[v] as usize].push(v as u32);
        }
        // Longest chain in roles: DP over the condensation.
        let mut chain = vec![0u32; c];
        for scc in 0..c {
            let mut best_succ_chain = 0u32;
            for &v in &members_of[scc] {
                for &w in succ(v as usize) {
                    let ws = scc_of[w as usize] as usize;
                    if ws != scc {
                        debug_assert!(ws < scc, "tarjan order violated");
                        let (left, right) = rows.split_at_mut(scc);
                        right[0].union_with(&left[ws]);
                        best_succ_chain = best_succ_chain.max(chain[ws]);
                    }
                }
            }
            chain[scc] = scc_size[scc] + best_succ_chain;
        }
        let longest_chain_roles = chain.iter().copied().max().unwrap_or(0);

        RoleClosure {
            n,
            scc_of,
            rows,
            longest_chain_roles,
        }
    }

    /// Number of roles indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff no roles are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `true` iff role `from` reaches role `to` (reflexive).
    #[inline]
    pub fn reaches(&self, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        let (f, t) = (from as usize, to as usize);
        if f >= self.n || t >= self.n {
            return from == to;
        }
        self.rows[self.scc_of[f] as usize].contains(t)
    }

    /// The closure row of `role`: every role reachable from it, itself
    /// included.
    pub fn row(&self, role: u32) -> &BitSet {
        &self.rows[self.scc_of[role as usize] as usize]
    }

    /// Number of SCCs.
    pub fn scc_count(&self) -> usize {
        self.rows.len()
    }

    /// SCC id of a role (reverse topological: sinks get low ids).
    pub fn scc_of(&self, role: u32) -> u32 {
        self.scc_of[role as usize]
    }

    /// Longest chain of the hierarchy measured in roles (an acyclic path
    /// visiting `k` roles has chain length `k`; a cyclic SCC of size `s`
    /// contributes `s`).
    ///
    /// Remark 2 of the paper conjectures that `n` applications of rule (3)
    /// suffice where “`n` is the length of the longest chain in RH”; we
    /// expose both the role count and the edge count
    /// ([`RoleClosure::longest_chain_edges`]) so callers can pick the
    /// reading they need.
    pub fn longest_chain_roles(&self) -> u32 {
        self.longest_chain_roles
    }

    /// Longest chain measured in edges (`roles - 1`, saturating).
    pub fn longest_chain_edges(&self) -> u32 {
        self.longest_chain_roles.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closure(n: usize, edges: &[(u32, u32)]) -> RoleClosure {
        RoleClosure::build(n, edges.iter().copied())
    }

    #[test]
    fn empty_graph() {
        let c = closure(0, &[]);
        assert_eq!(c.scc_count(), 0);
        assert_eq!(c.longest_chain_roles(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> 3
        let c = closure(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(c.reaches(0, 3));
        assert!(c.reaches(1, 3));
        assert!(!c.reaches(3, 0));
        assert!(c.reaches(2, 2), "reflexive");
        assert_eq!(c.scc_count(), 4);
        assert_eq!(c.longest_chain_roles(), 4);
        assert_eq!(c.longest_chain_edges(), 3);
    }

    #[test]
    fn diamond() {
        // 0 -> {1,2} -> 3
        let c = closure(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(c.reaches(0, 3));
        assert!(!c.reaches(1, 2));
        assert_eq!(c.longest_chain_roles(), 3);
    }

    #[test]
    fn cycle_collapses_to_one_scc() {
        // 0 -> 1 -> 2 -> 0, plus 2 -> 3
        let c = closure(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(c.scc_of(0), c.scc_of(1));
        assert_eq!(c.scc_of(1), c.scc_of(2));
        assert_ne!(c.scc_of(0), c.scc_of(3));
        for a in 0..3u32 {
            for b in 0..3u32 {
                assert!(c.reaches(a, b), "{a} should reach {b} inside the cycle");
            }
            assert!(c.reaches(a, 3));
        }
        assert!(!c.reaches(3, 0));
        assert_eq!(c.longest_chain_roles(), 4, "3-cycle + tail role");
    }

    #[test]
    fn self_loop_is_not_a_chain_extension() {
        let c = closure(2, &[(0, 0), (0, 1)]);
        assert!(c.reaches(0, 1));
        assert!(c.reaches(0, 0));
        assert_eq!(c.longest_chain_roles(), 2);
    }

    #[test]
    fn disconnected_components() {
        let c = closure(5, &[(0, 1), (3, 4)]);
        assert!(c.reaches(0, 1));
        assert!(!c.reaches(0, 3));
        assert!(!c.reaches(2, 0));
        assert!(c.reaches(2, 2));
        assert_eq!(c.longest_chain_roles(), 2);
    }

    #[test]
    fn out_of_range_roles_only_reach_themselves() {
        let c = closure(2, &[(0, 1)]);
        assert!(c.reaches(9, 9));
        assert!(!c.reaches(9, 0));
        assert!(!c.reaches(0, 9));
    }

    #[test]
    fn closure_matches_bfs_on_random_graphs() {
        // Deterministic pseudo-random graphs; compare against a naive BFS.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [1usize, 5, 17, 40] {
            let mut edges = Vec::new();
            for _ in 0..(n * 2) {
                let a = (next() % n as u64) as u32;
                let b = (next() % n as u64) as u32;
                edges.push((a, b));
            }
            let c = closure(n, &edges);
            // Naive BFS per source.
            for s in 0..n as u32 {
                let mut seen = vec![false; n];
                let mut queue = vec![s];
                seen[s as usize] = true;
                while let Some(v) = queue.pop() {
                    for &(a, b) in &edges {
                        if a == v && !seen[b as usize] {
                            seen[b as usize] = true;
                            queue.push(b);
                        }
                    }
                }
                for t in 0..n as u32 {
                    assert_eq!(
                        c.reaches(s, t),
                        seen[t as usize] || s == t,
                        "n={n} s={s} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn rows_are_shared_within_scc() {
        let c = closure(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(c.row(0).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.row(1).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.row(2).iter().collect::<Vec<_>>(), vec![2]);
    }
}
