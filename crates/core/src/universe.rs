//! The fixed vocabulary `U, R, A, O` and the hash-consed privilege term
//! table for `P†`.
//!
//! Definition 2 (privilege grammar):
//!
//! ```text
//! p ::= q | ¤(u,r) | ♦(u,r) | ¤(r,r′) | ♦(r,r′) | ¤(r,p) | ♦(r,p)
//! ```
//!
//! where `q ∈ P` is a user privilege, `¤` is the *grant* connective (the
//! privilege to add an edge) and `♦` is the *revoke* connective (the
//! privilege to remove an edge). `P†` is infinite because the connectives
//! nest; the [`Universe`] interns exactly the finitely many terms a given
//! run ever touches, giving each a dense [`PrivId`] with structural equality
//! equal to id equality. All higher layers (ordering, refinement, the
//! monitor) compare and memoise on ids.
//!
//! The universe is **append-only**: ids are never invalidated, so policies
//! built against the same universe stay compatible as analyses intern new
//! terms (e.g. the weaker-privilege enumeration of §4.2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::ids::{ActionId, Entity, ObjectId, Perm, PrivId, RoleId, UserId};
use crate::interner::Interner;

/// A directed edge of the policy graph, and simultaneously the payload of a
/// grant/revoke privilege: `¤(v, v′)` is precisely “may add edge `(v, v′)`”.
///
/// The three well-formed edge shapes mirror Definition 1 (for `UA`, `RH`)
/// and Definition 3 (for `PA†`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Edge {
    /// `(u, r) ∈ UA` — user membership.
    UserRole(UserId, RoleId),
    /// `(r, r′) ∈ RH` — role hierarchy (senior `r` inherits junior `r′`).
    RoleRole(RoleId, RoleId),
    /// `(r, p) ∈ PA†` — role-to-privilege assignment.
    RolePriv(RoleId, PrivId),
}

impl Edge {
    /// The source vertex, always an entity (`U ∪ R`).
    pub fn source(self) -> Entity {
        match self {
            Edge::UserRole(u, _) => Entity::User(u),
            Edge::RoleRole(r, _) | Edge::RolePriv(r, _) => Entity::Role(r),
        }
    }

    /// The target as an [`EdgeTarget`] (entity or privilege term).
    pub fn target(self) -> EdgeTarget {
        match self {
            Edge::UserRole(_, r) | Edge::RoleRole(_, r) => EdgeTarget::Entity(Entity::Role(r)),
            Edge::RolePriv(_, p) => EdgeTarget::Priv(p),
        }
    }
}

/// The target of an edge: a role, or a privilege term.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeTarget {
    /// An entity target (always a role for well-formed edges).
    Entity(Entity),
    /// A privilege-term target.
    Priv(PrivId),
}

/// One interned privilege term (the view stored in the universe's table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PrivTerm {
    /// A user privilege `q ∈ P`.
    Perm(Perm),
    /// `¤(v, v′)` — may **add** the edge.
    Grant(Edge),
    /// `♦(v, v′)` — may **remove** the edge.
    Revoke(Edge),
}

impl PrivTerm {
    /// `true` for `¤`/`♦` terms, `false` for user privileges.
    pub fn is_administrative(self) -> bool {
        !matches!(self, PrivTerm::Perm(_))
    }

    /// The edge inside a grant/revoke, if any.
    pub fn edge(self) -> Option<Edge> {
        match self {
            PrivTerm::Grant(e) | PrivTerm::Revoke(e) => Some(e),
            PrivTerm::Perm(_) => None,
        }
    }
}

/// Tag identifying which [`Universe`] a policy was built against.
///
/// Mixing ids across universes is a logic error; the tag lets policy
/// operations `debug_assert` compatibility cheaply.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct UniverseTag(u64);

impl UniverseTag {
    /// The raw tag value (for persistence layers).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a tag from its raw value (for persistence layers).
    pub fn from_raw(raw: u64) -> Self {
        UniverseTag(raw)
    }
}

static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// Owns the fixed sets `U, R, A, O` and the privilege term table.
#[derive(Debug, Clone)]
pub struct Universe {
    tag: UniverseTag,
    users: Interner,
    roles: Interner,
    actions: Interner,
    objects: Interner,
    terms: Vec<PrivTerm>,
    /// Connective-nesting depth per term (user privileges have depth 0,
    /// `¤(u,r)` depth 1, `¤(r,¤(u,r))` depth 2, …). Example 6 and Remark 2
    /// reason about this quantity, so it is precomputed at intern time.
    depths: Vec<u32>,
    index: HashMap<PrivTerm, PrivId>,
}

impl Default for Universe {
    fn default() -> Self {
        Self::new()
    }
}

impl Universe {
    /// Creates an empty universe with a fresh tag.
    pub fn new() -> Self {
        Universe {
            tag: UniverseTag(NEXT_TAG.fetch_add(1, AtomicOrdering::Relaxed)),
            users: Interner::new(),
            roles: Interner::new(),
            actions: Interner::new(),
            objects: Interner::new(),
            terms: Vec::new(),
            depths: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// This universe's identity tag.
    pub fn tag(&self) -> UniverseTag {
        self.tag
    }

    /// Declares this universe id-compatible with the universe `tag` came
    /// from.
    ///
    /// Intended for persistence layers that reconstruct a universe
    /// deterministically (same names, same ids, same term table) — the
    /// recovered universe *is* the saved one, so policies built against
    /// either should interoperate. Adopting a tag for a universe that is
    /// not actually id-compatible defeats the debug-time mixup check.
    pub fn adopt_tag(&mut self, tag: UniverseTag) {
        self.tag = tag;
    }

    // ----- vocabulary -------------------------------------------------

    /// Interns a user name.
    pub fn user(&mut self, name: &str) -> UserId {
        UserId(self.users.intern(name))
    }

    /// Interns a role name.
    pub fn role(&mut self, name: &str) -> RoleId {
        RoleId(self.roles.intern(name))
    }

    /// Interns an action name.
    pub fn action(&mut self, name: &str) -> ActionId {
        ActionId(self.actions.intern(name))
    }

    /// Interns an object name.
    pub fn object(&mut self, name: &str) -> ObjectId {
        ObjectId(self.objects.intern(name))
    }

    /// Interns a user privilege `(action, object)` in one call.
    pub fn perm(&mut self, action: &str, object: &str) -> Perm {
        let a = self.action(action);
        let o = self.object(object);
        Perm::new(a, o)
    }

    /// Looks up a user by name without interning.
    pub fn find_user(&self, name: &str) -> Option<UserId> {
        self.users.get(name).map(UserId)
    }

    /// Looks up a role by name without interning.
    pub fn find_role(&self, name: &str) -> Option<RoleId> {
        self.roles.get(name).map(RoleId)
    }

    /// Name of a user.
    pub fn user_name(&self, u: UserId) -> &str {
        self.users.resolve(u.0)
    }

    /// Name of a role.
    pub fn role_name(&self, r: RoleId) -> &str {
        self.roles.resolve(r.0)
    }

    /// Name of an action.
    pub fn action_name(&self, a: ActionId) -> &str {
        self.actions.resolve(a.0)
    }

    /// Name of an object.
    pub fn object_name(&self, o: ObjectId) -> &str {
        self.objects.resolve(o.0)
    }

    /// Number of interned users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of interned roles.
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of interned privilege terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of interned action names.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// Number of interned object names.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// The sizes of every intern table, as one comparable stamp.
    /// Interning is append-only, so two universes descended from the
    /// same lineage are identical iff their stamps are equal — the
    /// cheap "did this batch grow the universe?" test the snapshot
    /// publisher uses to share one allocation across epochs.
    pub fn population_stamp(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.users.len(),
            self.roles.len(),
            self.actions.len(),
            self.objects.len(),
            self.terms.len(),
        )
    }

    /// Iterates all users.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.users.len() as u32).map(UserId)
    }

    /// Iterates all roles.
    pub fn roles(&self) -> impl Iterator<Item = RoleId> {
        (0..self.roles.len() as u32).map(RoleId)
    }

    /// Iterates all interned privilege ids.
    pub fn priv_ids(&self) -> impl Iterator<Item = PrivId> {
        (0..self.terms.len() as u32).map(PrivId)
    }

    // ----- privilege terms ---------------------------------------------

    fn intern_term(&mut self, term: PrivTerm) -> PrivId {
        if let Some(&id) = self.index.get(&term) {
            return id;
        }
        let depth = match term {
            PrivTerm::Perm(_) => 0,
            PrivTerm::Grant(e) | PrivTerm::Revoke(e) => match e {
                Edge::UserRole(..) | Edge::RoleRole(..) => 1,
                Edge::RolePriv(_, p) => 1 + self.depths[p.index()],
            },
        };
        let id = PrivId(u32::try_from(self.terms.len()).expect("priv table overflow"));
        self.terms.push(term);
        self.depths.push(depth);
        self.index.insert(term, id);
        id
    }

    /// Interns a user privilege as a term (`q` in the grammar).
    pub fn priv_perm(&mut self, perm: Perm) -> PrivId {
        self.intern_term(PrivTerm::Perm(perm))
    }

    /// Interns `¤(v, v′)` for an arbitrary well-formed edge.
    pub fn priv_grant(&mut self, edge: Edge) -> PrivId {
        self.intern_term(PrivTerm::Grant(edge))
    }

    /// Interns `♦(v, v′)` for an arbitrary well-formed edge.
    pub fn priv_revoke(&mut self, edge: Edge) -> PrivId {
        self.intern_term(PrivTerm::Revoke(edge))
    }

    /// `¤(u, r)` — may add user `u` to role `r`.
    pub fn grant_user_role(&mut self, u: UserId, r: RoleId) -> PrivId {
        self.priv_grant(Edge::UserRole(u, r))
    }

    /// `¤(r, r′)` — may add the hierarchy edge `r → r′`.
    pub fn grant_role_role(&mut self, r: RoleId, r2: RoleId) -> PrivId {
        self.priv_grant(Edge::RoleRole(r, r2))
    }

    /// `¤(r, p)` — may assign privilege `p` to role `r`.
    pub fn grant_role_priv(&mut self, r: RoleId, p: PrivId) -> PrivId {
        self.priv_grant(Edge::RolePriv(r, p))
    }

    /// `♦(u, r)` — may remove user `u` from role `r`.
    pub fn revoke_user_role(&mut self, u: UserId, r: RoleId) -> PrivId {
        self.priv_revoke(Edge::UserRole(u, r))
    }

    /// `♦(r, r′)` — may remove the hierarchy edge `r → r′`.
    pub fn revoke_role_role(&mut self, r: RoleId, r2: RoleId) -> PrivId {
        self.priv_revoke(Edge::RoleRole(r, r2))
    }

    /// `♦(r, p)` — may revoke privilege `p` from role `r`.
    pub fn revoke_role_priv(&mut self, r: RoleId, p: PrivId) -> PrivId {
        self.priv_revoke(Edge::RolePriv(r, p))
    }

    /// The term behind an id.
    #[inline]
    pub fn term(&self, p: PrivId) -> PrivTerm {
        self.terms[p.index()]
    }

    /// Connective-nesting depth of a term (0 for user privileges).
    #[inline]
    pub fn depth(&self, p: PrivId) -> u32 {
        self.depths[p.index()]
    }

    /// Looks up a term without interning.
    pub fn find_term(&self, term: PrivTerm) -> Option<PrivId> {
        self.index.get(&term).copied()
    }

    /// All edges occurring anywhere inside `p`, including nested ones.
    ///
    /// Used to build the finite command alphabet for bounded refinement
    /// checking: exercising `¤(r, p)` can later expose the edges nested in
    /// `p`, so they all belong to the alphabet.
    pub fn edges_within(&self, p: PrivId) -> Vec<Edge> {
        let mut out = Vec::new();
        let mut stack = vec![p];
        while let Some(t) = stack.pop() {
            if let Some(edge) = self.term(t).edge() {
                out.push(edge);
                if let Edge::RolePriv(_, inner) = edge {
                    stack.push(inner);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_round_trips() {
        let mut uni = Universe::new();
        let d = uni.user("diana");
        let n = uni.role("nurse");
        assert_eq!(uni.user_name(d), "diana");
        assert_eq!(uni.role_name(n), "nurse");
        assert_eq!(uni.find_user("diana"), Some(d));
        assert_eq!(uni.find_role("doctor"), None);
    }

    #[test]
    fn terms_are_hash_consed() {
        let mut uni = Universe::new();
        let u = uni.user("bob");
        let r = uni.role("staff");
        let p1 = uni.grant_user_role(u, r);
        let p2 = uni.grant_user_role(u, r);
        assert_eq!(p1, p2, "identical terms share an id");
        let p3 = uni.revoke_user_role(u, r);
        assert_ne!(p1, p3, "grant and revoke of the same edge differ");
        assert_eq!(uni.term_count(), 2);
    }

    #[test]
    fn depth_counts_connective_nesting() {
        let mut uni = Universe::new();
        let perm = uni.perm("read", "t1");
        let q = uni.priv_perm(perm);
        assert_eq!(uni.depth(q), 0);
        let u = uni.user("bob");
        let staff = uni.role("staff");
        let g1 = uni.grant_user_role(u, staff); // ¤(bob, staff)
        assert_eq!(uni.depth(g1), 1);
        let g2 = uni.grant_role_priv(staff, g1); // ¤(staff, ¤(bob, staff))
        assert_eq!(uni.depth(g2), 2);
        let g3 = uni.grant_role_priv(staff, g2);
        assert_eq!(uni.depth(g3), 3);
    }

    #[test]
    fn nested_terms_share_subterms() {
        let mut uni = Universe::new();
        let u = uni.user("joe");
        let r = uni.role("nurse");
        let inner = uni.grant_user_role(u, r);
        let outer_a = uni.grant_role_priv(r, inner);
        let outer_b = uni.grant_role_priv(r, inner);
        assert_eq!(outer_a, outer_b);
        assert_eq!(uni.term_count(), 2);
    }

    #[test]
    fn edges_within_collects_nested() {
        let mut uni = Universe::new();
        let u = uni.user("bob");
        let staff = uni.role("staff");
        let hr = uni.role("hr");
        let inner = uni.grant_user_role(u, staff);
        let outer = uni.grant_role_priv(hr, inner);
        let edges = uni.edges_within(outer);
        assert!(edges.contains(&Edge::RolePriv(hr, inner)));
        assert!(edges.contains(&Edge::UserRole(u, staff)));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn tags_distinguish_universes() {
        let a = Universe::new();
        let b = Universe::new();
        assert_ne!(a.tag(), b.tag());
    }

    #[test]
    fn edge_source_and_target() {
        let mut uni = Universe::new();
        let u = uni.user("u");
        let r = uni.role("r");
        let s = uni.role("s");
        let perm = uni.perm("a", "o");
        let q = uni.priv_perm(perm);
        assert_eq!(Edge::UserRole(u, r).source(), Entity::User(u));
        assert_eq!(
            Edge::RoleRole(r, s).target(),
            EdgeTarget::Entity(Entity::Role(s))
        );
        assert_eq!(Edge::RolePriv(r, q).target(), EdgeTarget::Priv(q));
        assert_eq!(Edge::RolePriv(r, q).source(), Entity::Role(r));
    }

    #[test]
    fn administrative_predicate() {
        let mut uni = Universe::new();
        let perm = uni.perm("print", "colorA4");
        let q = uni.priv_perm(perm);
        let u = uni.user("u");
        let r = uni.role("r");
        let g = uni.grant_user_role(u, r);
        assert!(!uni.term(q).is_administrative());
        assert!(uni.term(g).is_administrative());
        assert_eq!(uni.term(q).edge(), None);
        assert_eq!(uni.term(g).edge(), Some(Edge::UserRole(u, r)));
    }
}
