//! Typed dense identifiers for the fixed sets `U`, `R`, `A`, `O` and for
//! hash-consed privilege terms.
//!
//! The paper fixes the sets of users, roles, actions and objects up front
//! (“we assume that they are chosen sufficiently large and fixed”, §3); the
//! [`crate::universe::Universe`] owns those sets and these newtypes index
//! into it. Using distinct types for each kind prevents the classic id-mixup
//! bug at compile time while keeping everything `Copy` and dense.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A user `u ∈ U`.
    UserId
);
id_type!(
    /// A role `r ∈ R`.
    RoleId
);
id_type!(
    /// An action (first component of a user privilege).
    ActionId
);
id_type!(
    /// An object (second component of a user privilege).
    ObjectId
);
id_type!(
    /// A hash-consed privilege term `p ∈ P†` (Definition 2).
    ///
    /// Structural equality of privilege terms coincides with id equality:
    /// the [`crate::universe::Universe`] interns each distinct term once.
    PrivId
);

/// A user privilege `q ∈ P ⊆ A × O`, e.g. `(read, ehrtable)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Perm {
    /// The action performed.
    pub action: ActionId,
    /// The object acted upon.
    pub object: ObjectId,
}

impl Perm {
    /// Convenience constructor.
    pub fn new(action: ActionId, object: ObjectId) -> Self {
        Perm { action, object }
    }
}

/// A vertex drawn from `U ∪ R` — the `v` in reachability queries and in the
/// privilege-ordering rules of Definition 8.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Entity {
    /// A user.
    User(UserId),
    /// A role.
    Role(RoleId),
}

impl Entity {
    /// The role inside, if this is a role.
    pub fn as_role(self) -> Option<RoleId> {
        match self {
            Entity::Role(r) => Some(r),
            Entity::User(_) => None,
        }
    }

    /// The user inside, if this is a user.
    pub fn as_user(self) -> Option<UserId> {
        match self {
            Entity::User(u) => Some(u),
            Entity::Role(_) => None,
        }
    }
}

impl From<UserId> for Entity {
    fn from(u: UserId) -> Self {
        Entity::User(u)
    }
}

impl From<RoleId> for Entity {
    fn from(r: RoleId) -> Self {
        Entity::Role(r)
    }
}

/// A vertex of the policy graph: `U ∪ R ∪ P†` (Definition 1 treats a policy
/// as the digraph `UA ∪ RH ∪ PA`; privilege terms are sink vertices).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// A user vertex.
    User(UserId),
    /// A role vertex.
    Role(RoleId),
    /// A privilege-term vertex (always a sink).
    Priv(PrivId),
}

impl From<Entity> for Node {
    fn from(e: Entity) -> Self {
        match e {
            Entity::User(u) => Node::User(u),
            Entity::Role(r) => Node::Role(r),
        }
    }
}

impl From<UserId> for Node {
    fn from(u: UserId) -> Self {
        Node::User(u)
    }
}

impl From<RoleId> for Node {
    fn from(r: RoleId) -> Self {
        Node::Role(r)
    }
}

impl From<PrivId> for Node {
    fn from(p: PrivId) -> Self {
        Node::Priv(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indexes() {
        let r = RoleId::from_index(7);
        assert_eq!(r.index(), 7);
        assert_eq!(r, RoleId(7));
    }

    #[test]
    fn entity_projections() {
        let e: Entity = RoleId(3).into();
        assert_eq!(e.as_role(), Some(RoleId(3)));
        assert_eq!(e.as_user(), None);
        let e: Entity = UserId(1).into();
        assert_eq!(e.as_user(), Some(UserId(1)));
        assert_eq!(e.as_role(), None);
    }

    #[test]
    fn node_conversions() {
        assert_eq!(Node::from(Entity::User(UserId(2))), Node::User(UserId(2)));
        assert_eq!(Node::from(RoleId(4)), Node::Role(RoleId(4)));
        assert_eq!(Node::from(PrivId(9)), Node::Priv(PrivId(9)));
    }

    #[test]
    fn perm_is_ordered_pair() {
        let p = Perm::new(ActionId(1), ObjectId(2));
        let q = Perm::new(ActionId(2), ObjectId(1));
        assert_ne!(p, q);
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", RoleId(5)), "RoleId(5)");
        assert_eq!(format!("{:?}", PrivId(0)), "PrivId(0)");
    }
}
