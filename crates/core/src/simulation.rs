//! Bounded checking of administrative refinement `φ ⊒† ψ` (Definition 7).
//!
//! Definition 7 quantifies over *all* command queues, so it cannot be
//! decided by enumeration; this module provides the bounded check used to
//! validate Theorem 1 empirically and to refute non-refinements with
//! concrete counterexamples. Theorem-1-style *certificates* (a weakening
//! step justified by `⊑φ`) need no search at all — that is the paper's
//! point.
//!
//! # Direction of the definition
//!
//! The formal text of Definition 7 binds the universally quantified queue
//! to `φ` and the existential one to `ψ`. The surrounding prose (“if ψ
//! allows a certain policy change then either the same policy change is
//! also allowed by φ, or it is a policy change that results in a safer
//! policy”) and the proof of Theorem 1 (which picks the ψ-command first
//! and matches it on φ) use the opposite binding. We implement the
//! prose/proof reading as [`SimulationDirection::Simulation`] (default):
//!
//! > `φ ⊒† ψ` iff for every queue `cq_ψ` there is a queue `cq_φ` with the
//! > same length and the same actor at every position such that
//! > `φ′ ⊒ ψ′`, where `⟨cq_φ, φ⟩ ⇒* ⟨ε, φ′⟩` and `⟨cq_ψ, ψ⟩ ⇒* ⟨ε, ψ′⟩`.
//!
//! The literal reading is available as
//! [`SimulationDirection::LiteralText`] so the discrepancy itself can be
//! tested (see `tests/theorem1.rs`).
//!
//! # The finite command alphabet
//!
//! Queues range over an infinite command space; only finitely many
//! commands can ever be *authorized* though. A command needs its exact
//! privilege term as a reachable vertex (explicit semantics), and
//! exercising privileges only ever adds edges that appear inside already-
//! existing privilege terms. The alphabet therefore contains, for both
//! policies: every existing edge, and every edge occurring (nested at any
//! depth) inside any assigned privilege term — each as both a grant and a
//! revoke, issued by every user that appears in `UA` or inside any such
//! edge. All other commands are no-ops on both sides and are represented
//! by a single distinguished no-op per actor (`allow_noop`).

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::command::{Command, CommandKind, CommandQueue};
use crate::ids::UserId;
use crate::policy::Policy;
use crate::refinement::refines;
use crate::transition::authorize_explicit;
use crate::universe::{Edge, Universe};

/// Which quantifier binding of Definition 7 to check.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SimulationDirection {
    /// ∀ queue on ψ ∃ queue on φ: `φ′ ⊒ ψ′` — the prose/proof reading.
    #[default]
    Simulation,
    /// ∀ queue on φ ∃ queue on ψ: `φ′ ⊒ ψ′` — the literal formal text.
    LiteralText,
}

/// Configuration for the bounded check.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Maximum queue length to explore (the bound `L`).
    pub max_queue_len: usize,
    /// Quantifier binding (see module docs).
    pub direction: SimulationDirection,
    /// Whether the responder may answer a step with a no-op command
    /// (modelling an unauthorized command outside the alphabet).
    pub allow_noop: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            max_queue_len: 2,
            direction: SimulationDirection::Simulation,
            allow_noop: true,
        }
    }
}

/// A refutation of `φ ⊒† ψ`: a driver queue no responder queue can match.
#[derive(Clone, Debug)]
pub struct SimulationCounterexample {
    /// The unmatchable queue (run on ψ under [`SimulationDirection::Simulation`],
    /// on φ under [`SimulationDirection::LiteralText`]).
    pub queue: CommandQueue,
    /// The driver's final policy.
    pub driver_final: Policy,
}

/// Result of the bounded check.
#[derive(Clone, Debug)]
pub enum SimulationOutcome {
    /// No counterexample with queues up to the configured length.
    HoldsUpTo(usize),
    /// A concrete refutation.
    Fails(Box<SimulationCounterexample>),
}

impl SimulationOutcome {
    /// `true` iff no counterexample was found.
    pub fn holds(&self) -> bool {
        matches!(self, SimulationOutcome::HoldsUpTo(_))
    }
}

/// Builds the finite command alphabet for the pair of policies.
pub fn command_alphabet(universe: &Universe, policies: &[&Policy]) -> Vec<Command> {
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    for policy in policies {
        edges.extend(policy.edges());
        for p in policy.priv_vertices() {
            edges.extend(universe.edges_within(p));
        }
    }
    let mut actors: BTreeSet<UserId> = BTreeSet::new();
    for policy in policies {
        actors.extend(policy.users_mentioned());
    }
    for edge in &edges {
        if let Edge::UserRole(u, _) = edge {
            actors.insert(*u);
        }
    }
    let mut out = Vec::with_capacity(edges.len() * actors.len() * 2);
    for &actor in &actors {
        for &edge in &edges {
            out.push(Command::grant(actor, edge));
            out.push(Command::revoke(actor, edge));
        }
    }
    out
}

/// Applies one command under explicit (Definition 5) semantics, returning
/// the successor policy. Unauthorized commands return the policy unchanged.
fn apply(universe: &Universe, policy: &Policy, cmd: &Command) -> Policy {
    let mut next = policy.clone();
    if authorize_explicit(universe, policy, cmd).is_some() {
        match cmd.kind {
            CommandKind::Grant => next.add_edge(cmd.edge),
            CommandKind::Revoke => next.remove_edge(cmd.edge),
        };
    }
    next
}

/// Checks `φ ⊒† ψ` up to the configured queue length.
///
/// Exponential in `max_queue_len` by construction — this is the
/// brute-force semantics the paper's syntactic ordering spares you from.
/// Intended for small policies (tests, counterexample extraction).
pub fn check_admin_refinement(
    universe: &Universe,
    phi: &Policy,
    psi: &Policy,
    config: SimulationConfig,
) -> SimulationOutcome {
    let (driver0, responder0, responder_is_phi) = match config.direction {
        SimulationDirection::Simulation => (psi.clone(), phi.clone(), true),
        SimulationDirection::LiteralText => (phi.clone(), psi.clone(), false),
    };
    let alphabet = command_alphabet(universe, &[phi, psi]);
    let mut by_actor: HashMap<UserId, Vec<Command>> = HashMap::new();
    for cmd in &alphabet {
        by_actor.entry(cmd.actor).or_default().push(*cmd);
    }

    // Frontier of driver states: (policy, witness queue), deduplicated by
    // policy *and* actor signature (the responder's options depend only on
    // the signature, the obligation only on the final policy — but two
    // queues with different signatures must be checked separately).
    let mut driver_frontier: Vec<(Policy, CommandQueue)> = vec![(driver0, CommandQueue::new())];
    // Responder state sets per actor signature, grown lazily. Signatures
    // are encoded as the Vec of actors.
    let mut responder_sets: HashMap<Vec<UserId>, Vec<Policy>> = HashMap::new();
    responder_sets.insert(Vec::new(), vec![responder0]);

    // Check the empty queue first: Definition 7 with cq = cq' = ε requires
    // φ ⊒ ψ outright.
    let check_pair = |responder_final: &Policy, driver_final: &Policy| -> bool {
        if responder_is_phi {
            refines(universe, responder_final, driver_final)
        } else {
            refines(universe, driver_final, responder_final)
        }
    };
    {
        let responders = &responder_sets[&Vec::new()];
        let (driver, queue) = &driver_frontier[0];
        if !responders.iter().any(|r| check_pair(r, driver)) {
            return SimulationOutcome::Fails(Box::new(SimulationCounterexample {
                queue: queue.clone(),
                driver_final: driver.clone(),
            }));
        }
    }

    for _len in 1..=config.max_queue_len {
        let mut next_frontier: Vec<(Policy, CommandQueue)> = Vec::new();
        let mut seen: HashSet<(Vec<UserId>, Policy)> = HashSet::new();
        for (driver, queue) in &driver_frontier {
            for cmd in &alphabet {
                let next = apply(universe, driver, cmd);
                let mut next_queue = queue.clone();
                next_queue.push(*cmd);
                let sig = next_queue.actor_signature();
                if !seen.insert((sig, next.clone())) {
                    continue;
                }
                next_frontier.push((next, next_queue));
            }
        }

        // Grow responder sets for every signature present in the frontier.
        for (driver, queue) in &next_frontier {
            let sig = queue.actor_signature();
            if !responder_sets.contains_key(&sig) {
                let (prefix, last) = sig.split_at(sig.len() - 1);
                let prefix_states = responder_sets
                    .get(prefix)
                    .expect("prefix signature explored first")
                    .clone();
                let actor = last[0];
                let mut states: Vec<Policy> = Vec::new();
                let mut state_seen: HashSet<Policy> = HashSet::new();
                let empty = Vec::new();
                let actor_cmds = by_actor.get(&actor).unwrap_or(&empty);
                for state in &prefix_states {
                    if config.allow_noop && state_seen.insert(state.clone()) {
                        states.push(state.clone());
                    }
                    for cmd in actor_cmds {
                        let next = apply(universe, state, cmd);
                        if state_seen.insert(next.clone()) {
                            states.push(next);
                        }
                    }
                }
                responder_sets.insert(sig.clone(), states);
            }
            let responders = &responder_sets[&sig];
            if !responders.iter().any(|r| check_pair(r, driver)) {
                return SimulationOutcome::Fails(Box::new(SimulationCounterexample {
                    queue: queue.clone(),
                    driver_final: driver.clone(),
                }));
            }
        }
        driver_frontier = next_frontier;
    }
    SimulationOutcome::HoldsUpTo(config.max_queue_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{OrderingMode, PrivilegeOrder};
    use crate::policy::PolicyBuilder;
    use crate::refinement::weaken_assignment;

    /// Small administrative policy: jane∈hr may add bob to staff;
    /// staff → dbusr2 → (write, t3).
    fn base() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("staff", "prnt", "color");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn refinement_is_reflexive_up_to_bound() {
        let (uni, policy) = base();
        let out = check_admin_refinement(&uni, &policy, &policy, SimulationConfig::default());
        assert!(out.holds());
    }

    #[test]
    fn weakening_is_a_refinement_theorem1() {
        // ψ replaces hr's ¤(bob, staff) with ¤(bob, dbusr2): φ ⊒† ψ.
        let (mut uni, phi) = base();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let hr = uni.find_role("hr").unwrap();
        let p = uni.grant_user_role(bob, staff);
        let q = uni.grant_user_role(bob, dbusr2);
        let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
        assert!(order.is_weaker(p, q), "precondition of Theorem 1");
        let psi = weaken_assignment(&phi, (hr, p), q);
        let out = check_admin_refinement(
            &uni,
            &phi,
            &psi,
            SimulationConfig {
                max_queue_len: 2,
                ..SimulationConfig::default()
            },
        );
        assert!(out.holds(), "Theorem 1 instance refuted: {out:?}");
    }

    #[test]
    fn strengthening_is_refuted_with_counterexample() {
        // ψ replaces hr's ¤(bob, dbusr2) with the *stronger* ¤(bob, staff):
        // ψ can make bob print in color, φ cannot.
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("staff", "prnt", "color");
        let (bob, staff, dbusr2) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_role("dbusr2").unwrap(),
            )
        };
        let weak = b.universe_mut().grant_user_role(bob, dbusr2);
        b = b.assign_priv("hr", weak);
        let (mut uni, phi) = b.finish();
        let strong = uni.grant_user_role(bob, staff);
        let hr = uni.find_role("hr").unwrap();
        let psi = weaken_assignment(&phi, (hr, weak), strong);
        let out = check_admin_refinement(
            &uni,
            &phi,
            &psi,
            SimulationConfig {
                max_queue_len: 1,
                ..SimulationConfig::default()
            },
        );
        match out {
            SimulationOutcome::Fails(ce) => {
                assert_eq!(ce.queue.len(), 1, "one command suffices: {ce:?}");
            }
            SimulationOutcome::HoldsUpTo(_) => panic!("expected a counterexample"),
        }
    }

    #[test]
    fn empty_queue_case_requires_plain_refinement() {
        // ψ grants an extra perm outright: refuted by the empty queue.
        let (mut uni, phi) = base();
        let mut psi = phi.clone();
        let nurse = uni.role("nurse");
        let diana = uni.user("diana");
        let perm = uni.perm("read", "secret");
        let p = uni.priv_perm(perm);
        psi.add_edge(Edge::UserRole(diana, nurse));
        psi.add_edge(Edge::RolePriv(nurse, p));
        let out = check_admin_refinement(&uni, &phi, &psi, SimulationConfig::default());
        match out {
            SimulationOutcome::Fails(ce) => assert!(ce.queue.is_empty()),
            SimulationOutcome::HoldsUpTo(_) => panic!("expected empty-queue refutation"),
        }
    }

    #[test]
    fn alphabet_covers_nested_edges() {
        let (mut uni, mut phi) = base();
        // Nest: hr may grant staff the privilege to add joe to nurse.
        let joe = uni.user("joe");
        let nurse = uni.role("nurse");
        let staff = uni.find_role("staff").unwrap();
        let hr = uni.find_role("hr").unwrap();
        let inner = uni.grant_user_role(joe, nurse);
        let outer = uni.grant_role_priv(staff, inner);
        phi.add_edge(Edge::RolePriv(hr, outer));
        let alphabet = command_alphabet(&uni, &[&phi]);
        assert!(
            alphabet
                .iter()
                .any(|c| c.edge == Edge::UserRole(joe, nurse)),
            "nested edge must be in the alphabet"
        );
        assert!(
            alphabet
                .iter()
                .any(|c| c.edge == Edge::RolePriv(staff, inner)),
            "intermediate edge must be in the alphabet"
        );
    }

    #[test]
    fn literal_direction_differs_from_simulation() {
        // Under the literal reading, ψ may be anything φ can stay above —
        // e.g. dropping all of ψ's administrative privileges never hurts.
        let (uni, phi) = base();
        let mut psi = phi.clone();
        // Remove hr's only privilege from ψ: ψ can never change anything.
        let hr = uni.find_role("hr").unwrap();
        let p = psi.privs_of(hr).next().unwrap();
        psi.remove_edge(Edge::RolePriv(hr, p));
        for direction in [
            SimulationDirection::Simulation,
            SimulationDirection::LiteralText,
        ] {
            let out = check_admin_refinement(
                &uni,
                &phi,
                &psi,
                SimulationConfig {
                    max_queue_len: 1,
                    direction,
                    allow_noop: true,
                },
            );
            assert!(out.holds(), "{direction:?}");
        }
    }

    #[test]
    fn revocation_swap_is_a_refinement() {
        // Replacing a revocation privilege by a different revocation
        // privilege preserves ⊒† (the D5 analysis in DESIGN.md).
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("joe", "nurse")
            .assign("joe", "staff")
            .inherit("staff", "nurse")
            .permit("nurse", "read", "t1")
            .permit("staff", "write", "t3");
        let (joe, nurse, staff) = {
            let u = b.universe_mut();
            (
                u.find_user("joe").unwrap(),
                u.find_role("nurse").unwrap(),
                u.find_role("staff").unwrap(),
            )
        };
        let rev_nurse = b.universe_mut().revoke_user_role(joe, nurse);
        b = b.assign_priv("hr", rev_nurse);
        let (mut uni, phi) = b.finish();
        let rev_staff = uni.revoke_user_role(joe, staff);
        let hr = uni.find_role("hr").unwrap();
        let psi = weaken_assignment(&phi, (hr, rev_nurse), rev_staff);
        let out = check_admin_refinement(&uni, &phi, &psi, SimulationConfig::default());
        assert!(out.holds(), "{out:?}");
    }

    #[test]
    fn default_auth_mode_is_explicit() {
        // Sanity: the checker runs Definition 5 semantics; AuthMode default
        // agrees.
        use crate::transition::AuthMode;
        assert_eq!(AuthMode::default(), AuthMode::Explicit);
    }
}
