//! Administrative RBAC policies (Definitions 1 and 3).
//!
//! A policy `φ = (UA, RH, PA†)` is kept as three ordered edge sets over
//! dense ids; following the paper we treat it as the directed graph
//! `UA ∪ RH ∪ PA†`. Ordered sets (`BTreeSet`) give deterministic iteration,
//! cheap structural hashing (the bounded refinement checker memoises on
//! whole policies) and `O(log n)` mutation, which is the access pattern of
//! the transition system.
//!
//! Each relation lives behind an [`Arc`], so `Policy::clone` is three
//! reference-count bumps — the epoch publisher snapshots the live policy
//! per batch, and a deep copy per publication was the dominant fixed
//! cost of small batches. Mutation goes through [`Arc::make_mut`]:
//! uniquely-owned policies (the writer's live copy, search states)
//! mutate in place for free, while a policy that shares structure with
//! a published snapshot copies **only the relation the batch touches**
//! (a membership-churn batch never copies `RH` or `PA†`).

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::ids::{Node, Perm, PrivId, RoleId, UserId};
use crate::universe::{Edge, PrivTerm, Universe, UniverseTag};

/// An administrative RBAC policy `φ = (UA, RH, PA†)`.
///
/// Non-administrative policies (Definition 1) are the special case where
/// every assigned privilege is a user privilege; see
/// [`Policy::is_non_administrative`].
///
/// Equality and hashing are structural (edge sets only): a policy
/// recovered from disk compares equal to the live policy it was saved
/// from even though the recovered universe carries a fresh
/// [`UniverseTag`]. The tag is a debug aid for catching cross-universe id
/// mixups, not part of policy identity.
#[derive(Clone, Debug)]
pub struct Policy {
    tag: UniverseTag,
    ua: Arc<BTreeSet<(UserId, RoleId)>>,
    rh: Arc<BTreeSet<(RoleId, RoleId)>>,
    pa: Arc<BTreeSet<(RoleId, PrivId)>>,
}

impl PartialEq for Policy {
    fn eq(&self, other: &Self) -> bool {
        // Snapshots and their writers share relations until one of them
        // mutates, so pointer equality settles most comparisons without
        // walking the trees.
        (Arc::ptr_eq(&self.ua, &other.ua) || self.ua == other.ua)
            && (Arc::ptr_eq(&self.rh, &other.rh) || self.rh == other.rh)
            && (Arc::ptr_eq(&self.pa, &other.pa) || self.pa == other.pa)
    }
}

impl Eq for Policy {}

impl std::hash::Hash for Policy {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ua.hash(state);
        self.rh.hash(state);
        self.pa.hash(state);
    }
}

impl Policy {
    /// Creates an empty policy bound to `universe`.
    pub fn new(universe: &Universe) -> Self {
        Policy {
            tag: universe.tag(),
            ua: Arc::new(BTreeSet::new()),
            rh: Arc::new(BTreeSet::new()),
            pa: Arc::new(BTreeSet::new()),
        }
    }

    /// Tag of the universe this policy's ids belong to.
    pub fn universe_tag(&self) -> UniverseTag {
        self.tag
    }

    /// `true` iff every id this policy's edges mention is interned in
    /// `universe` — the non-panicking containment check for policies
    /// that cross a trust boundary. [`check_universe`](Self::check_universe)
    /// only compares tags, which clones preserve (and only in debug
    /// builds), so a policy built on a client-extended clone of a
    /// universe carries the right tag but out-of-range ids; indexing
    /// with those panics. Servers must check this before building
    /// indexes over a caller-supplied policy.
    pub fn ids_in_bounds(&self, universe: &Universe) -> bool {
        self.edges().all(|edge| match edge {
            Edge::UserRole(u, r) => {
                u.index() < universe.user_count() && r.index() < universe.role_count()
            }
            Edge::RoleRole(a, b) => {
                a.index() < universe.role_count() && b.index() < universe.role_count()
            }
            Edge::RolePriv(r, p) => {
                r.index() < universe.role_count() && p.index() < universe.term_count()
            }
        })
    }

    /// Asserts (in debug builds) that `universe` is the one this policy was
    /// built against.
    #[inline]
    pub fn check_universe(&self, universe: &Universe) {
        debug_assert_eq!(
            self.tag,
            universe.tag(),
            "policy used with a foreign universe"
        );
    }

    // ----- mutation (the `φ ∪ (v,v′)` / `φ \ (v,v′)` of Definition 5) ----

    /// Adds an edge; returns `true` if the policy changed. Copy-on-write:
    /// only the touched relation is copied, and only when shared.
    pub fn add_edge(&mut self, edge: Edge) -> bool {
        match edge {
            Edge::UserRole(u, r) => {
                if self.ua.contains(&(u, r)) {
                    return false;
                }
                Arc::make_mut(&mut self.ua).insert((u, r))
            }
            Edge::RoleRole(r, s) => {
                if self.rh.contains(&(r, s)) {
                    return false;
                }
                Arc::make_mut(&mut self.rh).insert((r, s))
            }
            Edge::RolePriv(r, p) => {
                if self.pa.contains(&(r, p)) {
                    return false;
                }
                Arc::make_mut(&mut self.pa).insert((r, p))
            }
        }
    }

    /// Removes an edge; returns `true` if the policy changed. Copy-on-write
    /// like [`add_edge`](Self::add_edge); removing an absent edge copies
    /// nothing.
    pub fn remove_edge(&mut self, edge: Edge) -> bool {
        match edge {
            Edge::UserRole(u, r) => {
                if !self.ua.contains(&(u, r)) {
                    return false;
                }
                Arc::make_mut(&mut self.ua).remove(&(u, r))
            }
            Edge::RoleRole(r, s) => {
                if !self.rh.contains(&(r, s)) {
                    return false;
                }
                Arc::make_mut(&mut self.rh).remove(&(r, s))
            }
            Edge::RolePriv(r, p) => {
                if !self.pa.contains(&(r, p)) {
                    return false;
                }
                Arc::make_mut(&mut self.pa).remove(&(r, p))
            }
        }
    }

    /// Membership test for a single edge.
    pub fn contains_edge(&self, edge: Edge) -> bool {
        match edge {
            Edge::UserRole(u, r) => self.ua.contains(&(u, r)),
            Edge::RoleRole(r, s) => self.rh.contains(&(r, s)),
            Edge::RolePriv(r, p) => self.pa.contains(&(r, p)),
        }
    }

    // ----- access -------------------------------------------------------

    /// Iterates the user-assignment relation `UA`.
    pub fn ua(&self) -> impl Iterator<Item = (UserId, RoleId)> + '_ {
        self.ua.iter().copied()
    }

    /// Iterates the role hierarchy `RH`.
    pub fn rh(&self) -> impl Iterator<Item = (RoleId, RoleId)> + '_ {
        self.rh.iter().copied()
    }

    /// Iterates the privilege-assignment relation `PA†`.
    pub fn pa(&self) -> impl Iterator<Item = (RoleId, PrivId)> + '_ {
        self.pa.iter().copied()
    }

    /// Iterates every edge of the policy graph.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.ua
            .iter()
            .map(|&(u, r)| Edge::UserRole(u, r))
            .chain(self.rh.iter().map(|&(r, s)| Edge::RoleRole(r, s)))
            .chain(self.pa.iter().map(|&(r, p)| Edge::RolePriv(r, p)))
    }

    /// Roles a user is directly assigned to.
    pub fn roles_of(&self, u: UserId) -> impl Iterator<Item = RoleId> + '_ {
        self.ua
            .range((u, RoleId(0))..=(u, RoleId(u32::MAX)))
            .map(|&(_, r)| r)
    }

    /// Direct juniors of a role in `RH`.
    pub fn juniors_of(&self, r: RoleId) -> impl Iterator<Item = RoleId> + '_ {
        self.rh
            .range((r, RoleId(0))..=(r, RoleId(u32::MAX)))
            .map(|&(_, s)| s)
    }

    /// Privileges directly assigned to a role.
    pub fn privs_of(&self, r: RoleId) -> impl Iterator<Item = PrivId> + '_ {
        self.pa
            .range((r, PrivId(0))..=(r, PrivId(u32::MAX)))
            .map(|&(_, p)| p)
    }

    /// The distinct privilege terms appearing as `PA†` targets — the
    /// privilege *vertices* of the policy graph.
    pub fn priv_vertices(&self) -> BTreeSet<PrivId> {
        self.pa.iter().map(|&(_, p)| p).collect()
    }

    /// Users mentioned in `UA`.
    pub fn users_mentioned(&self) -> BTreeSet<UserId> {
        self.ua.iter().map(|&(u, _)| u).collect()
    }

    /// Roles mentioned anywhere in the policy (either side of `RH`, targets
    /// of `UA`, sources of `PA†`).
    pub fn roles_mentioned(&self) -> BTreeSet<RoleId> {
        let mut out: BTreeSet<RoleId> = BTreeSet::new();
        out.extend(self.ua.iter().map(|&(_, r)| r));
        for &(r, s) in self.rh.iter() {
            out.insert(r);
            out.insert(s);
        }
        out.extend(self.pa.iter().map(|&(r, _)| r));
        out
    }

    /// Number of edges `|UA| + |RH| + |PA†|`.
    pub fn edge_count(&self) -> usize {
        self.ua.len() + self.rh.len() + self.pa.len()
    }

    /// `|UA|`.
    pub fn ua_len(&self) -> usize {
        self.ua.len()
    }

    /// `|RH|`.
    pub fn rh_len(&self) -> usize {
        self.rh.len()
    }

    /// `|PA†|`.
    pub fn pa_len(&self) -> usize {
        self.pa.len()
    }

    /// `true` iff the policy is non-administrative (Definition 1): every
    /// assigned privilege is a plain user privilege.
    pub fn is_non_administrative(&self, universe: &Universe) -> bool {
        self.check_universe(universe);
        self.pa
            .iter()
            .all(|&(_, p)| !universe.term(p).is_administrative())
    }

    /// Direct successors of a node in the policy graph (privilege vertices
    /// are sinks).
    pub fn successors(&self, node: Node) -> Vec<Node> {
        match node {
            Node::User(u) => self.roles_of(u).map(Node::Role).collect(),
            Node::Role(r) => {
                let mut out: Vec<Node> = self.juniors_of(r).map(Node::Role).collect();
                out.extend(self.privs_of(r).map(Node::Priv));
                out
            }
            Node::Priv(_) => Vec::new(),
        }
    }

    /// User privileges (perms) directly assigned to `r`, resolved through
    /// the universe.
    pub fn perms_of<'u>(
        &'u self,
        universe: &'u Universe,
        r: RoleId,
    ) -> impl Iterator<Item = Perm> + 'u {
        self.privs_of(r).filter_map(move |p| {
            if let PrivTerm::Perm(q) = universe.term(p) {
                Some(q)
            } else {
                None
            }
        })
    }
}

/// Fluent construction of a universe-plus-policy pair.
///
/// ```
/// use adminref_core::policy::PolicyBuilder;
///
/// let (uni, policy) = PolicyBuilder::new()
///     .assign("diana", "nurse")
///     .assign("diana", "staff")
///     .inherit("staff", "nurse")
///     .permit("nurse", "read", "t1")
///     .finish();
/// let diana = uni.find_user("diana").unwrap();
/// assert_eq!(policy.roles_of(diana).count(), 2);
/// ```
#[derive(Debug)]
pub struct PolicyBuilder {
    universe: Universe,
    policy: Policy,
}

impl Default for PolicyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PolicyBuilder {
    /// Starts with a fresh universe and an empty policy.
    pub fn new() -> Self {
        let universe = Universe::new();
        let policy = Policy::new(&universe);
        PolicyBuilder { universe, policy }
    }

    /// `UA` edge: makes `user` a member of `role` (both interned by name).
    pub fn assign(mut self, user: &str, role: &str) -> Self {
        let u = self.universe.user(user);
        let r = self.universe.role(role);
        self.policy.add_edge(Edge::UserRole(u, r));
        self
    }

    /// `RH` edge: `senior` inherits `junior`.
    pub fn inherit(mut self, senior: &str, junior: &str) -> Self {
        let s = self.universe.role(senior);
        let j = self.universe.role(junior);
        self.policy.add_edge(Edge::RoleRole(s, j));
        self
    }

    /// `PA` edge: gives `role` the user privilege `(action, object)`.
    pub fn permit(mut self, role: &str, action: &str, object: &str) -> Self {
        let r = self.universe.role(role);
        let perm = self.universe.perm(action, object);
        let p = self.universe.priv_perm(perm);
        self.policy.add_edge(Edge::RolePriv(r, p));
        self
    }

    /// `PA†` edge: assigns an already-interned privilege term to `role`.
    ///
    /// Use this (together with [`PolicyBuilder::universe_mut`]) for nested
    /// administrative privileges.
    pub fn assign_priv(mut self, role: &str, p: PrivId) -> Self {
        let r = self.universe.role(role);
        self.policy.add_edge(Edge::RolePriv(r, p));
        self
    }

    /// Mutable access to the universe, for interning privilege terms.
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// Declares a user without assigning it (useful for command actors that
    /// hold no roles yet, like `bob` before Jane acts in Example 4).
    pub fn declare_user(mut self, user: &str) -> Self {
        self.universe.user(user);
        self
    }

    /// Declares a role without edges.
    pub fn declare_role(mut self, role: &str) -> Self {
        self.universe.role(role);
        self
    }

    /// Finishes, returning the universe and the policy.
    pub fn finish(self) -> (Universe, Policy) {
        (self.universe, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .permit("dbusr1", "read", "t1")
            .finish()
    }

    #[test]
    fn set_semantics_of_add_remove() {
        let (uni, mut policy) = small();
        let u = uni.find_user("diana").unwrap();
        let r = uni.find_role("nurse").unwrap();
        let e = Edge::UserRole(u, r);
        assert!(policy.contains_edge(e));
        assert!(!policy.add_edge(e), "re-adding an edge is a no-op");
        assert!(policy.remove_edge(e));
        assert!(!policy.remove_edge(e), "re-removing is a no-op");
        assert!(!policy.contains_edge(e));
    }

    #[test]
    fn iterators_partition_edges() {
        let (_, policy) = small();
        assert_eq!(policy.ua_len(), 2);
        assert_eq!(policy.rh_len(), 2);
        assert_eq!(policy.pa_len(), 1);
        assert_eq!(policy.edges().count(), policy.edge_count());
    }

    #[test]
    fn roles_of_uses_range_scan() {
        let (uni, policy) = small();
        let diana = uni.find_user("diana").unwrap();
        let mut roles: Vec<&str> = policy.roles_of(diana).map(|r| uni.role_name(r)).collect();
        roles.sort_unstable();
        assert_eq!(roles, vec!["nurse", "staff"]);
    }

    #[test]
    fn non_administrative_detection() {
        let (mut uni, mut policy) = small();
        assert!(policy.is_non_administrative(&uni));
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let g = uni.grant_user_role(bob, staff);
        let hr = uni.role("hr");
        policy.add_edge(Edge::RolePriv(hr, g));
        assert!(!policy.is_non_administrative(&uni));
    }

    #[test]
    fn priv_vertices_are_pa_targets() {
        let (mut uni, mut policy) = small();
        let bob = uni.user("bob");
        let staff = uni.find_role("staff").unwrap();
        let g = uni.grant_user_role(bob, staff);
        let hr = uni.role("hr");
        policy.add_edge(Edge::RolePriv(hr, g));
        let verts = policy.priv_vertices();
        assert!(verts.contains(&g));
        assert_eq!(verts.len(), 2); // the perm and the grant
    }

    #[test]
    fn successors_of_each_node_kind() {
        let (uni, policy) = small();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dbusr1 = uni.find_role("dbusr1").unwrap();
        assert_eq!(policy.successors(Node::User(diana)).len(), 2);
        assert_eq!(policy.successors(Node::Role(staff)).len(), 1);
        // dbusr1 has one privilege and no juniors
        let succ = policy.successors(Node::Role(dbusr1));
        assert_eq!(succ.len(), 1);
        assert!(matches!(succ[0], Node::Priv(_)));
        assert!(policy.successors(succ[0]).is_empty(), "privs are sinks");
    }

    #[test]
    fn policies_hash_structurally() {
        use std::collections::HashSet;
        let (uni, policy) = small();
        let mut other = policy.clone();
        let mut set = HashSet::new();
        set.insert(policy.clone());
        assert!(set.contains(&other));
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        other.remove_edge(Edge::UserRole(diana, staff));
        assert!(!set.contains(&other));
    }

    #[test]
    fn clones_share_until_mutated() {
        let (uni, policy) = small();
        let mut writer = policy.clone();
        assert_eq!(writer, policy);
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        // Mutating the clone copies only the touched relation; the
        // original keeps its view of every relation.
        assert!(writer.remove_edge(Edge::UserRole(diana, nurse)));
        assert!(policy.contains_edge(Edge::UserRole(diana, nurse)));
        assert!(!writer.contains_edge(Edge::UserRole(diana, nurse)));
        assert_eq!(writer.rh_len(), policy.rh_len());
        assert_eq!(writer.pa_len(), policy.pa_len());
        // No-op mutations never copy (and report no change).
        let mut reader = policy.clone();
        assert!(!reader.add_edge(Edge::UserRole(diana, nurse)));
        assert!(!reader.remove_edge(Edge::UserRole(diana, RoleId(999))));
        assert_eq!(reader, policy);
    }

    #[test]
    fn mentioned_sets() {
        let (uni, policy) = small();
        assert_eq!(policy.users_mentioned().len(), 1);
        let roles = policy.roles_mentioned();
        for name in ["nurse", "staff", "dbusr1"] {
            assert!(roles.contains(&uni.find_role(name).unwrap()));
        }
    }

    #[test]
    fn perms_of_skips_admin_privs() {
        let (mut uni, mut policy) = small();
        let bob = uni.user("bob");
        let dbusr1 = uni.find_role("dbusr1").unwrap();
        let g = uni.grant_user_role(bob, dbusr1);
        policy.add_edge(Edge::RolePriv(dbusr1, g));
        let perms: Vec<Perm> = policy.perms_of(&uni, dbusr1).collect();
        assert_eq!(perms.len(), 1, "only the (read, t1) perm counts");
    }
}
