//! # adminref-suite
//!
//! Facade crate that wires the workspace-root `tests/` (cross-crate
//! integration tests) and `examples/` (runnable binaries) into Cargo. It
//! re-exports every workspace crate so tests and examples can reach the
//! whole system through one dependency.

#![forbid(unsafe_code)]

pub use adminref_baselines as baselines;
pub use adminref_core as core;
pub use adminref_lang as lang;
pub use adminref_monitor as monitor;
pub use adminref_store as store;
pub use adminref_workloads as workloads;
