//! The typed request/response protocol: one [`Request`] / [`Response`]
//! enum pair covering the whole monitor alphabet, one unified
//! [`ServiceError`], and the [`PolicyService`] trait every server
//! implements.
//!
//! The protocol is the *single* public surface: every capability of the
//! reference monitor — access checks, session lifecycle, administrative
//! command batches, reachability and refinement analyses, audit reads,
//! version/stats — is one `Request` variant, answered by exactly one
//! `Response` variant or the unified error. Typed convenience methods
//! ([`PolicyService::check_access`], [`PolicyService::submit`], …) are
//! thin wrappers that build the request, call [`PolicyService::call`],
//! and destructure the response, so adding a transport (wire encoding,
//! sharded router, recording proxy) means implementing one method.

use adminref_core::admission::{AdmissionReport, ConstraintSet, ImpactReport};
use adminref_core::command::Command;
use adminref_core::ids::{Entity, Perm, RoleId, UserId};
use adminref_core::lint::LintReport;
use adminref_core::policy::Policy;
use adminref_core::refinement::RefinementViolation;
use adminref_core::safety::{ReachabilityAnswer, SafetyConfig};
use adminref_core::session::SessionError;
use adminref_core::transition::StepOutcome;
use adminref_monitor::{AuditEvent, MonitorError, SessionId};
use adminref_store::{RecoveryReport, StoreError};

/// One request over the monitor alphabet.
///
/// # Examples
///
/// ```
/// use adminref_core::prelude::*;
/// use adminref_monitor::{MonitorConfig, ReferenceMonitor};
/// use adminref_service::{MonitorService, PolicyService, Request, Response};
///
/// let (uni, policy) = PolicyBuilder::new()
///     .assign("diana", "nurse")
///     .permit("nurse", "read", "t1")
///     .finish();
/// let diana = uni.find_user("diana").unwrap();
/// let nurse = uni.find_role("nurse").unwrap();
/// let mut probe = uni.clone();
/// let read_t1 = probe.perm("read", "t1");
///
/// let svc = MonitorService::in_memory(uni, policy, MonitorConfig::default());
/// // Session lifecycle and access checks, through the raw protocol:
/// let Response::SessionCreated(sid) = svc.call(Request::CreateSession { user: diana })? else {
///     unreachable!()
/// };
/// svc.call(Request::ActivateRole { session: sid, role: nurse })?;
/// let Response::Access(granted) =
///     svc.call(Request::CheckAccess { session: sid, perm: read_t1 })?
/// else {
///     unreachable!()
/// };
/// assert!(granted);
/// # Ok::<(), adminref_service::ServiceError>(())
/// ```
#[derive(Clone, Debug)]
pub enum Request {
    /// Access check: do the session's active roles reach `perm`?
    CheckAccess {
        /// The session to check.
        session: SessionId,
        /// The requested user privilege.
        perm: Perm,
    },
    /// Starts a session for `user`.
    CreateSession {
        /// The session's user.
        user: UserId,
    },
    /// Activates `role` in `session` (`u →φ r` against the current
    /// published epoch).
    ActivateRole {
        /// The session.
        session: SessionId,
        /// The role to activate.
        role: RoleId,
    },
    /// Deactivates `role` in `session`.
    DeactivateRole {
        /// The session.
        session: SessionId,
        /// The role to deactivate.
        role: RoleId,
    },
    /// Ends a session.
    DropSession {
        /// The session to end.
        session: SessionId,
    },
    /// Submits administrative commands as **one atomic batch**: executed
    /// serially under Definition 5, synced/published as one epoch, and
    /// answered with one [`StepOutcome`] per command.
    Submit {
        /// The commands, applied front to back.
        commands: Vec<Command>,
    },
    /// Bounded safety analysis against a snapshot of the live policy:
    /// can `entity` come to hold `perm`?
    AnalyzeReach {
        /// The entity under analysis.
        entity: Entity,
        /// The user privilege of interest.
        perm: Perm,
        /// Search bounds (`auth_mode` is overridden with the serving
        /// monitor's own mode).
        config: SafetyConfig,
    },
    /// Refinement check (Definition 6) between the live policy and a
    /// caller-supplied candidate over the same universe.
    CheckRefinement {
        /// The candidate policy (must be resolved against the serving
        /// monitor's universe; see [`ServiceError::ForeignPolicy`]).
        candidate: Policy,
        /// Which policy plays `φ` and which `ψ`.
        direction: RefinementDirection,
        /// Cap on returned violation witnesses (the total count is
        /// always exact).
        max_witnesses: usize,
    },
    /// Copies out at most the last `max` retained audit events.
    AuditTail {
        /// Maximum events to return.
        max: usize,
    },
    /// Copies out up to `max` retained events with `seq > after` — the
    /// incremental shipping pattern.
    AuditSince {
        /// Return only events with a larger sequence number.
        after: u64,
        /// Maximum events to return.
        max: usize,
    },
    /// The published epoch id and state checksum.
    Version,
    /// Cheap live counters (epoch, population, sessions, audit).
    Stats,
    /// Failover: asks a replica to stop following and become a writable
    /// primary under a new, higher replication term. Idempotent on a
    /// server that is already a primary (it answers with its current
    /// term, or term 0 when replication is not enabled).
    Promote,
    /// Admin op: folds a durable backend's WAL into a fresh snapshot
    /// (a no-op on in-memory monitors). Complements the monitor's
    /// automatic post-publish compaction for operator-driven
    /// maintenance windows.
    Compact,
    /// Static policy analysis over the published snapshot: the
    /// monitor's lint pass with optional caller-supplied
    /// separation-of-duty role pairs.
    Lint {
        /// Role pairs no single user/role may bridge (the SoD rule).
        sod_pairs: Vec<(RoleId, RoleId)>,
    },
    /// Batch impact analysis: simulates `commands` against the
    /// published snapshot and reports the blast radius — flipped
    /// permission verdicts, sessions the publish would force-deactivate,
    /// grow-only classification changes, interval-status changes, and
    /// the admission findings the batch would be refused with — without
    /// committing anything.
    Analyze {
        /// The candidate batch, applied front to back in simulation.
        commands: Vec<Command>,
    },
    /// Replaces the durable admission [`ConstraintSet`] (WAL-persisted
    /// on durable monitors; refused with [`ServiceError::ReadOnly`] on
    /// replicas). Subsequent `Submit` batches are statically gated
    /// against it.
    SetConstraints {
        /// The new constraint set (normalized by the server).
        constraints: ConstraintSet,
    },
    /// Reads back the admission constraint set currently enforced.
    GetConstraints,
}

/// Which direction a [`Request::CheckRefinement`] runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefinementDirection {
    /// `live ⊒ candidate`: the candidate is a non-administrative
    /// refinement of the live policy (grants at most what it grants).
    CandidateRefinesLive,
    /// `candidate ⊒ live`: the live policy refines the candidate.
    LiveRefinesCandidate,
}

/// The reply to a [`Request::CheckRefinement`].
#[derive(Clone, Debug)]
pub struct RefinementReply {
    /// Whether the refinement holds (no violations).
    pub holds: bool,
    /// Exact number of violating `(entity, perm)` pairs.
    pub total_violations: usize,
    /// The first violations, capped at the request's `max_witnesses`.
    pub witnesses: Vec<RefinementViolation>,
}

/// The reply to a [`Request::Version`]: the published epoch id plus the
/// canonical policy-state checksum at that epoch (see
/// [`adminref_core::checksum`]). Equal `(epoch, checksum)` pairs from
/// two servers mean they hold byte-identical policy states — the cheap
/// cross-server comparison replication is built on, usable with or
/// without replication enabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VersionInfo {
    /// The published epoch id.
    pub epoch: u64,
    /// The canonical policy-state checksum at that epoch.
    pub checksum: u64,
}

/// Which side of a replication pair a server is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicationRole {
    /// Accepts writes; streams delta frames to subscribed replicas.
    Primary,
    /// Follows a primary's delta stream; refuses writes with
    /// [`ServiceError::ReadOnly`].
    Replica,
}

/// Replication observability, surfaced through [`ServiceStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicationStatus {
    /// This server's role.
    pub role: ReplicationRole,
    /// The replication term (fencing token): bumped on every promotion,
    /// so frames from a deposed primary carry a stale term and are
    /// rejected.
    pub term: u64,
    /// The last epoch this server applied from its primary (for a
    /// primary: its own published epoch).
    pub last_applied_epoch: u64,
    /// How many epochs this server trails the newest epoch its primary
    /// has announced (always 0 on a primary).
    pub lag: u64,
}

/// The reply to a [`Request::Stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceStats {
    /// The published epoch id.
    pub epoch: u64,
    /// The canonical policy-state checksum at that epoch.
    pub checksum: u64,
    /// Users interned in the published universe.
    pub users: usize,
    /// Roles interned in the published universe.
    pub roles: usize,
    /// Edges in the live policy.
    pub edges: usize,
    /// Currently live sessions.
    pub sessions: usize,
    /// Audit events currently retained.
    pub audit_retained: usize,
    /// Publish-time forced deactivations so far (stale-session
    /// revalidation; see the monitor's session revocation audit).
    pub forced_deactivations: u64,
    /// Safety analyses served so far.
    pub analyses_run: u64,
    /// Of those, how many ended `Unknown` — truncated with no unbounded
    /// engine able to close the instance. A growing share means the
    /// analysis bounds are too small for the live policy.
    pub analyses_indefinite: u64,
    /// Static lint passes served so far (the monitor's
    /// `lint_policy` entry point).
    pub lints_run: u64,
    /// Total findings those passes produced.
    pub lint_findings: u64,
    /// What recovery found when the backing store was opened (`None`
    /// for in-memory tenants and freshly created stores) — surfaced so
    /// a truncated torn tail or divergent replay is operator-visible
    /// instead of silently discarded.
    pub recovery: Option<RecoveryReport>,
    /// Replication status, when this server participates in replication
    /// (`None` for standalone servers).
    pub replication: Option<ReplicationStatus>,
}

/// One response; each [`Request`] variant is answered by exactly one
/// `Response` variant (see the table on [`PolicyService`]).
///
/// # Examples
///
/// ```
/// use adminref_core::prelude::*;
/// use adminref_monitor::{MonitorConfig, ReferenceMonitor};
/// use adminref_service::{MonitorService, PolicyService, Request, Response};
///
/// let (uni, policy) = PolicyBuilder::new()
///     .assign("jane", "hr")
///     .declare_user("bob")
///     .declare_role("staff")
///     .finish();
/// let jane = uni.find_user("jane").unwrap();
/// let bob = uni.find_user("bob").unwrap();
/// let staff = uni.find_role("staff").unwrap();
/// let mut admin_uni = uni.clone();
/// let grant = admin_uni.grant_user_role(bob, staff);
///
/// let svc = MonitorService::in_memory(admin_uni.clone(), {
///     let mut p = policy.clone();
///     p.add_edge(Edge::RolePriv(admin_uni.find_role("hr").unwrap(), grant));
///     p
/// }, MonitorConfig::default());
///
/// // An admin batch answers with one StepOutcome per command:
/// let batch = vec![Command::grant(jane, Edge::UserRole(bob, staff))];
/// let Response::Outcomes(outcomes) = svc.call(Request::Submit { commands: batch })? else {
///     unreachable!()
/// };
/// assert!(outcomes[0].executed());
/// // …and the epoch moved:
/// let Response::Version(info) = svc.call(Request::Version)? else { unreachable!() };
/// assert_eq!(info.epoch, 1);
/// # Ok::<(), adminref_service::ServiceError>(())
/// ```
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::CheckAccess`].
    Access(bool),
    /// Answer to [`Request::CreateSession`].
    SessionCreated(SessionId),
    /// Answer to [`Request::ActivateRole`].
    RoleActivated,
    /// Answer to [`Request::DeactivateRole`]; `true` if it was active.
    RoleDeactivated(bool),
    /// Answer to [`Request::DropSession`]; `true` if it existed.
    SessionDropped(bool),
    /// Answer to [`Request::Submit`]: one outcome per command.
    Outcomes(Vec<StepOutcome>),
    /// Answer to [`Request::AnalyzeReach`].
    Reach(ReachabilityAnswer),
    /// Answer to [`Request::CheckRefinement`].
    Refinement(RefinementReply),
    /// Answer to [`Request::AuditTail`] / [`Request::AuditSince`].
    Audit(Vec<AuditEvent>),
    /// Answer to [`Request::Version`].
    Version(VersionInfo),
    /// Answer to [`Request::Stats`].
    Stats(ServiceStats),
    /// Answer to [`Request::Compact`].
    Compacted,
    /// Answer to [`Request::Lint`].
    Lint(LintReport),
    /// Answer to [`Request::Promote`]: the (possibly new) replication
    /// term this server is now primary under, and its published epoch.
    Promoted {
        /// The replication term after the promotion.
        term: u64,
        /// The published epoch at promotion time.
        epoch: u64,
    },
    /// Answer to [`Request::Analyze`].
    Impact(ImpactReport),
    /// Answer to [`Request::SetConstraints`] (echoing the normalized
    /// set now enforced) and [`Request::GetConstraints`].
    Constraints(ConstraintSet),
}

/// The unified error type of the protocol.
#[derive(Debug)]
pub enum ServiceError {
    /// The session id is unknown (or was closed, or forged).
    UnknownSession(SessionId),
    /// Session-level refusal (e.g. role activation denied).
    Session(SessionError),
    /// Durable-backend failure. `applied` holds the outcomes of the
    /// request's own commands that executed (the applied prefix —
    /// audited and published). On a mid-batch append failure the prefix
    /// is also durable; on a batch-final sync failure every command of
    /// the request appears in `applied` but durability is in doubt.
    Backend {
        /// Outcomes of this request's applied prefix.
        applied: Vec<StepOutcome>,
        /// The underlying store failure.
        error: StoreError,
    },
    /// The request was not attempted: an earlier request in the same
    /// commit group hit a backend failure. No effect on the policy;
    /// safe to retry.
    Aborted,
    /// A [`Request::CheckRefinement`] candidate was built against a
    /// different universe than the serving monitor's.
    ForeignPolicy,
    /// The tenant id is syntactically invalid (see
    /// [`ServiceRouter`](crate::router::ServiceRouter)).
    InvalidTenant(String),
    /// The tenant does not exist and the router is not configured to
    /// create missing tenants.
    UnknownTenant(String),
    /// Recovery of the tenant's store replayed entries whose recorded
    /// authorization outcome diverged — the log and snapshot are from
    /// different histories — and the router is configured to refuse
    /// such tenants (`fail_on_divergence`). Serving would answer from a
    /// state no serial history produced.
    Recovery {
        /// The tenant whose store diverged.
        tenant: String,
        /// Number of divergent log entries.
        divergent: usize,
    },
    /// The server is a read replica: it serves the full read-only
    /// alphabet but refuses state-changing requests (`Submit`,
    /// `Compact`, `SetConstraints`). Retry against the primary, or
    /// promote this replica first ([`Request::Promote`]).
    ReadOnly,
    /// The admission gate refused the batch: the *candidate* state a
    /// `Submit` would have published violates the durable constraint
    /// set. Nothing was logged, audited or published; the report names
    /// each violation. Not retryable as-is — amend the batch or the
    /// constraints.
    Admission(AdmissionReport),
    /// A typed wrapper received a response variant that does not answer
    /// its request — a server bug, never the caller's fault.
    Protocol {
        /// The response variant the wrapper expected.
        expected: &'static str,
    },
    /// The transport under a remote client failed: connection refused or
    /// reset, a malformed or oversized frame, an unsupported wire
    /// version. Only remote transports (see `adminref_service::client`)
    /// produce this; in-process servers never do.
    Transport {
        /// Human-readable description of the transport failure.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            ServiceError::Session(e) => write!(f, "session error: {e}"),
            ServiceError::Backend { applied, error } => write!(
                f,
                "backend failure after {} applied command(s): {error}",
                applied.len()
            ),
            ServiceError::Aborted => {
                write!(
                    f,
                    "request aborted: an earlier request in the commit group failed"
                )
            }
            ServiceError::ForeignPolicy => {
                write!(f, "candidate policy was built against a different universe")
            }
            ServiceError::InvalidTenant(t) => write!(f, "invalid tenant id {t:?}"),
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServiceError::Recovery { tenant, divergent } => write!(
                f,
                "tenant {tenant:?} refused: recovery replayed {divergent} divergent entr{}",
                if *divergent == 1 { "y" } else { "ies" }
            ),
            ServiceError::ReadOnly => {
                write!(f, "read-only replica: writes must go to the primary")
            }
            ServiceError::Protocol { expected } => {
                write!(f, "protocol violation: expected {expected} response")
            }
            ServiceError::Transport { message } => write!(f, "transport failure: {message}"),
            ServiceError::Admission(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<MonitorError> for ServiceError {
    fn from(e: MonitorError) -> Self {
        match e {
            MonitorError::UnknownSession(id) => ServiceError::UnknownSession(id),
            MonitorError::Session(s) => ServiceError::Session(s),
            MonitorError::Store(s) => ServiceError::Backend {
                applied: Vec::new(),
                error: s,
            },
            MonitorError::Admission(report) => ServiceError::Admission(report),
        }
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Backend {
            applied: Vec::new(),
            error: e,
        }
    }
}

/// A policy server: one entry point ([`call`](Self::call)) plus typed
/// convenience wrappers that are nothing but `call` + destructure.
///
/// | Request | Response | Wrapper |
/// |---------|----------|---------|
/// | `CheckAccess` | `Access` | [`check_access`](Self::check_access) |
/// | `CreateSession` | `SessionCreated` | [`create_session`](Self::create_session) |
/// | `ActivateRole` | `RoleActivated` | [`activate_role`](Self::activate_role) |
/// | `DeactivateRole` | `RoleDeactivated` | [`deactivate_role`](Self::deactivate_role) |
/// | `DropSession` | `SessionDropped` | [`drop_session`](Self::drop_session) |
/// | `Submit` | `Outcomes` | [`submit`](Self::submit) / [`submit_one`](Self::submit_one) |
/// | `AnalyzeReach` | `Reach` | [`analyze_reach`](Self::analyze_reach) |
/// | `CheckRefinement` | `Refinement` | [`check_refinement`](Self::check_refinement) |
/// | `AuditTail` / `AuditSince` | `Audit` | [`audit_tail`](Self::audit_tail) / [`audit_since`](Self::audit_since) |
/// | `Version` | `Version` | [`version`](Self::version) / [`version_info`](Self::version_info) |
/// | `Stats` | `Stats` | [`stats`](Self::stats) |
/// | `Compact` | `Compacted` | [`compact`](Self::compact) |
/// | `Lint` | `Lint` | [`lint`](Self::lint) |
/// | `Promote` | `Promoted` | [`promote`](Self::promote) |
/// | `Analyze` | `Impact` | [`analyze_batch`](Self::analyze_batch) |
/// | `SetConstraints` | `Constraints` | [`set_constraints`](Self::set_constraints) |
/// | `GetConstraints` | `Constraints` | [`get_constraints`](Self::get_constraints) |
pub trait PolicyService: Send + Sync {
    /// Serves one request.
    fn call(&self, request: Request) -> Result<Response, ServiceError>;

    /// Serves several requests from one caller, returning the results
    /// in request order.
    ///
    /// The default is a per-request loop over
    /// [`call`](PolicyService::call). Servers with a write combiner
    /// override it so that the `Submit` requests of one burst enter
    /// the combiner **together** (see
    /// [`GroupCommit::submit_many`](crate::group_commit::GroupCommit::submit_many));
    /// the network daemon uses this for frames that arrived on a
    /// connection back-to-back. Callers must not assume any ordering
    /// *between* the requests of one burst beyond what a set of
    /// concurrent `call`s would give them.
    fn call_many(&self, requests: Vec<Request>) -> Vec<Result<Response, ServiceError>> {
        requests.into_iter().map(|r| self.call(r)).collect()
    }

    /// Typed wrapper for [`Request::CheckAccess`].
    fn check_access(&self, session: SessionId, perm: Perm) -> Result<bool, ServiceError> {
        match self.call(Request::CheckAccess { session, perm })? {
            Response::Access(granted) => Ok(granted),
            _ => Err(ServiceError::Protocol { expected: "Access" }),
        }
    }

    /// Typed wrapper for [`Request::CreateSession`].
    fn create_session(&self, user: UserId) -> Result<SessionId, ServiceError> {
        match self.call(Request::CreateSession { user })? {
            Response::SessionCreated(id) => Ok(id),
            _ => Err(ServiceError::Protocol {
                expected: "SessionCreated",
            }),
        }
    }

    /// Typed wrapper for [`Request::ActivateRole`].
    fn activate_role(&self, session: SessionId, role: RoleId) -> Result<(), ServiceError> {
        match self.call(Request::ActivateRole { session, role })? {
            Response::RoleActivated => Ok(()),
            _ => Err(ServiceError::Protocol {
                expected: "RoleActivated",
            }),
        }
    }

    /// Typed wrapper for [`Request::DeactivateRole`].
    fn deactivate_role(&self, session: SessionId, role: RoleId) -> Result<bool, ServiceError> {
        match self.call(Request::DeactivateRole { session, role })? {
            Response::RoleDeactivated(was) => Ok(was),
            _ => Err(ServiceError::Protocol {
                expected: "RoleDeactivated",
            }),
        }
    }

    /// Typed wrapper for [`Request::DropSession`].
    fn drop_session(&self, session: SessionId) -> Result<bool, ServiceError> {
        match self.call(Request::DropSession { session })? {
            Response::SessionDropped(was) => Ok(was),
            _ => Err(ServiceError::Protocol {
                expected: "SessionDropped",
            }),
        }
    }

    /// Typed wrapper for [`Request::Submit`].
    fn submit(&self, commands: Vec<Command>) -> Result<Vec<StepOutcome>, ServiceError> {
        match self.call(Request::Submit { commands })? {
            Response::Outcomes(outcomes) => Ok(outcomes),
            _ => Err(ServiceError::Protocol {
                expected: "Outcomes",
            }),
        }
    }

    /// Submits a single command (a batch of one).
    fn submit_one(&self, command: Command) -> Result<StepOutcome, ServiceError> {
        let outcomes = self.submit(vec![command])?;
        outcomes.first().copied().ok_or(ServiceError::Protocol {
            expected: "Outcomes(len 1)",
        })
    }

    /// Typed wrapper for [`Request::AnalyzeReach`].
    fn analyze_reach(
        &self,
        entity: Entity,
        perm: Perm,
        config: SafetyConfig,
    ) -> Result<ReachabilityAnswer, ServiceError> {
        match self.call(Request::AnalyzeReach {
            entity,
            perm,
            config,
        })? {
            Response::Reach(answer) => Ok(answer),
            _ => Err(ServiceError::Protocol { expected: "Reach" }),
        }
    }

    /// Typed wrapper for [`Request::CheckRefinement`].
    fn check_refinement(
        &self,
        candidate: Policy,
        direction: RefinementDirection,
        max_witnesses: usize,
    ) -> Result<RefinementReply, ServiceError> {
        match self.call(Request::CheckRefinement {
            candidate,
            direction,
            max_witnesses,
        })? {
            Response::Refinement(reply) => Ok(reply),
            _ => Err(ServiceError::Protocol {
                expected: "Refinement",
            }),
        }
    }

    /// Typed wrapper for [`Request::AuditTail`].
    fn audit_tail(&self, max: usize) -> Result<Vec<AuditEvent>, ServiceError> {
        match self.call(Request::AuditTail { max })? {
            Response::Audit(events) => Ok(events),
            _ => Err(ServiceError::Protocol { expected: "Audit" }),
        }
    }

    /// Typed wrapper for [`Request::AuditSince`].
    fn audit_since(&self, after: u64, max: usize) -> Result<Vec<AuditEvent>, ServiceError> {
        match self.call(Request::AuditSince { after, max })? {
            Response::Audit(events) => Ok(events),
            _ => Err(ServiceError::Protocol { expected: "Audit" }),
        }
    }

    /// Typed wrapper for [`Request::Version`], returning only the epoch
    /// (see [`version_info`](Self::version_info) for the checksum too).
    fn version(&self) -> Result<u64, ServiceError> {
        Ok(self.version_info()?.epoch)
    }

    /// Typed wrapper for [`Request::Version`]: epoch plus state
    /// checksum.
    fn version_info(&self) -> Result<VersionInfo, ServiceError> {
        match self.call(Request::Version)? {
            Response::Version(info) => Ok(info),
            _ => Err(ServiceError::Protocol {
                expected: "Version",
            }),
        }
    }

    /// Typed wrapper for [`Request::Promote`]: returns the replication
    /// term the server is now primary under and its published epoch.
    fn promote(&self) -> Result<(u64, u64), ServiceError> {
        match self.call(Request::Promote)? {
            Response::Promoted { term, epoch } => Ok((term, epoch)),
            _ => Err(ServiceError::Protocol {
                expected: "Promoted",
            }),
        }
    }

    /// Typed wrapper for [`Request::Stats`].
    fn stats(&self) -> Result<ServiceStats, ServiceError> {
        match self.call(Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ServiceError::Protocol { expected: "Stats" }),
        }
    }

    /// Typed wrapper for [`Request::Compact`].
    fn compact(&self) -> Result<(), ServiceError> {
        match self.call(Request::Compact)? {
            Response::Compacted => Ok(()),
            _ => Err(ServiceError::Protocol {
                expected: "Compacted",
            }),
        }
    }

    /// Typed wrapper for [`Request::Lint`].
    fn lint(&self, sod_pairs: Vec<(RoleId, RoleId)>) -> Result<LintReport, ServiceError> {
        match self.call(Request::Lint { sod_pairs })? {
            Response::Lint(report) => Ok(report),
            _ => Err(ServiceError::Protocol { expected: "Lint" }),
        }
    }

    /// Typed wrapper for [`Request::Analyze`]: the batch's blast radius,
    /// computed without committing anything.
    fn analyze_batch(&self, commands: Vec<Command>) -> Result<ImpactReport, ServiceError> {
        match self.call(Request::Analyze { commands })? {
            Response::Impact(report) => Ok(report),
            _ => Err(ServiceError::Protocol { expected: "Impact" }),
        }
    }

    /// Typed wrapper for [`Request::SetConstraints`]: returns the
    /// normalized set the server now enforces.
    fn set_constraints(&self, constraints: ConstraintSet) -> Result<ConstraintSet, ServiceError> {
        match self.call(Request::SetConstraints { constraints })? {
            Response::Constraints(set) => Ok(set),
            _ => Err(ServiceError::Protocol {
                expected: "Constraints",
            }),
        }
    }

    /// Typed wrapper for [`Request::GetConstraints`].
    fn get_constraints(&self) -> Result<ConstraintSet, ServiceError> {
        match self.call(Request::GetConstraints)? {
            Response::Constraints(set) => Ok(set),
            _ => Err(ServiceError::Protocol {
                expected: "Constraints",
            }),
        }
    }
}

impl<T: PolicyService + ?Sized> PolicyService for &T {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        (**self).call(request)
    }

    fn call_many(&self, requests: Vec<Request>) -> Vec<Result<Response, ServiceError>> {
        (**self).call_many(requests)
    }
}

impl<T: PolicyService + ?Sized> PolicyService for std::sync::Arc<T> {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        (**self).call(request)
    }

    fn call_many(&self, requests: Vec<Request>) -> Vec<Result<Response, ServiceError>> {
        (**self).call_many(requests)
    }
}
