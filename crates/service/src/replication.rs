//! Epoch-delta replication: a primary streams each published epoch's
//! [`EdgeDelta`](adminref_core::reach::EdgeDelta)s to subscribed read replicas.
//!
//! ## Model
//!
//! The write path already funnels every administrative batch through
//! one writer that publishes an immutable
//! [`PolicySnapshot`](adminref_core::snapshot::PolicySnapshot) per
//! epoch. Replication taps that exact point: a
//! [`PublishHook`](adminref_monitor::PublishHook) installed by the
//! [`ReplicationHub`] fires inside the writer critical section — so
//! frames leave in strict epoch order — and broadcasts one
//! [`ReplDelta`](crate::wire::FrameKind::ReplDelta) frame per epoch
//! carrying `(term, epoch, deltas, state checksum)` to every
//! subscriber. A replica applies the frame through the same
//! [`PolicySnapshot::next`](adminref_core::snapshot::PolicySnapshot::next)
//! incremental path the primary used and serves the full read alphabet
//! lock-free from its own published snapshots; `Submit`/`Compact` are
//! refused with [`ServiceError::ReadOnly`].
//!
//! ## Lifecycle
//!
//! * **Catch-up.** A subscriber announces the epoch it has applied
//!   through ([`encode_repl_subscribe`](crate::wire::encode_repl_subscribe));
//!   unless that is exactly the primary's current epoch it receives a
//!   [`ReplSnapshot`](crate::wire::FrameKind::ReplSnapshot) bootstrap —
//!   the CRC-framed `(universe, policy)` state blob of
//!   [`adminref_store::encode_state`] — and then joins the live delta
//!   stream. Registration happens under the subscriber lock the
//!   broadcast path also takes, and each subscriber tracks the last
//!   epoch sent to it, so the bootstrap/stream seam has no gap and no
//!   overlap.
//! * **Divergence.** Every delta frame carries the checksum of the
//!   post-apply policy state
//!   ([`adminref_core::checksum`]). A replica whose recomputed state
//!   disagrees refuses the frame
//!   ([`ReplicaApplyError`](adminref_monitor::ReplicaApplyError)),
//!   publishes nothing, drops the connection, and reconnects
//!   requesting a fresh bootstrap.
//! * **Failover.** [`Request::Promote`] on a replica stops its
//!   [`Follower`], increments the replication **term**, and makes the
//!   node writable. Terms fence deposed primaries: every replication
//!   frame is stamped with the sender's term, a follower rejects any
//!   frame below the highest term it has seen, and a primary refuses
//!   subscribers that announce a higher term than its own.
//!
//! ## Caveats
//!
//! Broadcast happens inside the writer critical section and writes to
//! subscriber sockets synchronously: a stalled replica backpressures
//! the primary's writes (reads stay lock-free). The serving daemon's
//! request-decode universe is fixed at spawn; a re-bootstrap that
//! ships a *grown* universe updates the replica's serving state and
//! checksums, but ids interned after spawn only become addressable by
//! that replica's own clients after a restart (interning is
//! append-only, so all old ids stay valid).

use std::io::{self, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use adminref_core::admission::ConstraintSet;
use adminref_core::policy::Policy;
use adminref_core::universe::Universe;
use adminref_monitor::{PublishEvent, ReferenceMonitor};
use adminref_store::{decode_state, encode_state};
use parking_lot::Mutex;

use crate::daemon::{read_frame_polling, send_error, ConnWriter, Stream};
use crate::group_commit::GroupCommit;
use crate::protocol::{
    PolicyService, ReplicationRole, ReplicationStatus, Request, Response, ServiceError,
};
use crate::service::dispatch;
use crate::wire::{self, Frame, FrameKind};

/// How often a blocked follower read wakes to check for stop/promote.
const FOLLOWER_READ_POLL: Duration = Duration::from_millis(100);

// ----- the hub ---------------------------------------------------------

/// The replication state of one node: its fencing term, role, and the
/// downstream subscribers it streams delta frames to.
///
/// Both roles carry a hub. On a primary it broadcasts every published
/// epoch; on a replica the [`Follower`] applies upstream frames through
/// the monitor, whose publish hook then forwards them to *this* node's
/// own subscribers — so replicas chain.
pub struct ReplicationHub {
    monitor: Arc<ReferenceMonitor>,
    /// Highest fencing term this node has seen (or serves under).
    term: AtomicU64,
    /// `true` on a primary (writes accepted, frames originated here).
    writable: AtomicBool,
    /// `true` once this node's state provably came from its upstream
    /// (bootstrap installed or CLI-level bootstrap): only then may a
    /// reconnecting follower claim its epoch instead of requesting a
    /// fresh snapshot.
    bootstrapped: AtomicBool,
    /// Highest epoch seen in any frame (or published locally); the
    /// replica lag in [`status`](ReplicationHub::status) is this minus
    /// the applied epoch.
    seen_epoch: AtomicU64,
    subscribers: Mutex<Vec<Subscriber>>,
    next_subscriber: AtomicU64,
}

struct Subscriber {
    id: u64,
    writer: Arc<ConnWriter>,
    /// Epoch of the last frame sent (or of the bootstrap snapshot):
    /// broadcast skips events at or below it, which is what makes the
    /// subscribe-vs-publish race gap- and overlap-free.
    last_sent: u64,
}

impl ReplicationHub {
    /// A hub for the given role, with the monitor's publish hook
    /// attached (weakly — dropping the hub detaches it).
    pub fn new(monitor: Arc<ReferenceMonitor>, role: ReplicationRole) -> Arc<ReplicationHub> {
        let hub = Arc::new(ReplicationHub {
            monitor,
            term: AtomicU64::new(0),
            writable: AtomicBool::new(role == ReplicationRole::Primary),
            bootstrapped: AtomicBool::new(false),
            seen_epoch: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            next_subscriber: AtomicU64::new(1),
        });
        let weak: Weak<ReplicationHub> = Arc::downgrade(&hub);
        hub.monitor.set_publish_hook(Some(Box::new(move |event| {
            if let Some(hub) = weak.upgrade() {
                hub.broadcast(event);
            }
        })));
        hub
    }

    /// The monitor this hub replicates.
    pub fn monitor(&self) -> &Arc<ReferenceMonitor> {
        &self.monitor
    }

    /// The highest fencing term this node has seen.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    /// `true` iff this node currently accepts writes (primary role).
    pub fn writable(&self) -> bool {
        self.writable.load(Ordering::SeqCst)
    }

    /// Number of live downstream subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }

    /// Marks this node's state as bootstrapped from upstream at `term`
    /// (used when the bootstrap happened out of band, before the
    /// follower thread started).
    pub fn mark_bootstrapped(&self, term: u64) {
        self.admit_term(term);
        self.bootstrapped.store(true, Ordering::SeqCst);
    }

    /// Fencing check for an incoming frame stamped `term`: admits it
    /// (raising this node's term to match) iff it is not from a deposed
    /// primary, i.e. not below the highest term already seen.
    pub fn admit_term(&self, term: u64) -> bool {
        self.term.fetch_max(term, Ordering::SeqCst) <= term
    }

    /// Promotes this node: makes it writable under a term one above the
    /// highest it has seen. Idempotent — promoting a primary returns
    /// its current term. Returns `(term, epoch)`.
    pub fn promote(&self) -> (u64, u64) {
        if !self.writable.swap(true, Ordering::SeqCst) {
            self.term.fetch_add(1, Ordering::SeqCst);
        }
        (self.term(), ReferenceMonitor::version(&self.monitor))
    }

    /// Current replication status for `Stats`.
    pub fn status(&self) -> ReplicationStatus {
        let applied = ReferenceMonitor::version(&self.monitor);
        let seen = self.seen_epoch.load(Ordering::SeqCst).max(applied);
        ReplicationStatus {
            role: if self.writable() {
                ReplicationRole::Primary
            } else {
                ReplicationRole::Replica
            },
            term: self.term(),
            last_applied_epoch: applied,
            lag: seen - applied,
        }
    }

    /// The publish-hook target: ships one `ReplDelta` frame per
    /// published epoch to every subscriber that has not already seen
    /// it. Runs inside the writer critical section, so frames leave in
    /// strict epoch order.
    fn broadcast(&self, event: &PublishEvent) {
        self.seen_epoch.fetch_max(event.epoch, Ordering::SeqCst);
        let payload =
            wire::encode_repl_delta(self.term(), event.epoch, &event.deltas, event.checksum);
        let mut subs = self.subscribers.lock();
        for sub in subs.iter_mut() {
            if event.epoch <= sub.last_sent {
                continue;
            }
            sub.writer.send(FrameKind::ReplDelta, 0, &payload);
            sub.last_sent = event.epoch;
        }
    }

    /// Registers a subscriber, sending it a `ReplSnapshot` bootstrap
    /// first unless it already holds exactly the current epoch.
    /// Refuses a follower announcing a higher term than this node's —
    /// that means *we* are the deposed primary.
    pub(crate) fn subscribe(
        &self,
        writer: Arc<ConnWriter>,
        request_id: u64,
        follower_term: u64,
        last_applied: Option<u64>,
    ) -> Result<u64, ServiceError> {
        let term = self.term();
        if follower_term > term {
            return Err(ServiceError::Transport {
                message: format!(
                    "stale primary: follower is at term {follower_term}, this node at term {term}"
                ),
            });
        }
        // Holding the subscriber lock across snapshot read, bootstrap
        // send, and registration closes the gap against a concurrent
        // publish: a publish that stored its snapshot but has not yet
        // broadcast will find this subscriber registered with
        // `last_sent` >= its epoch and skip it.
        let mut subs = self.subscribers.lock();
        let snapshot = self.monitor.read_snapshot();
        let epoch = snapshot.epoch;
        if last_applied != Some(epoch) {
            let constraints = self.monitor.constraints();
            let state = encode_state(snapshot.universe(), snapshot.policy(), &constraints);
            let payload = wire::encode_repl_snapshot(term, epoch, &state);
            writer.send(FrameKind::ReplSnapshot, request_id, &payload);
        }
        let id = self.next_subscriber.fetch_add(1, Ordering::SeqCst);
        subs.push(Subscriber {
            id,
            writer,
            last_sent: epoch,
        });
        Ok(id)
    }

    /// Drops a subscriber (its connection closed).
    pub(crate) fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().retain(|s| s.id != id);
    }
}

/// Serves one replication connection on the primary after its first
/// `ReplSubscribe` frame arrived: registers the subscriber, then keeps
/// reading so a disconnect (or an in-place re-subscribe after replica
/// divergence) is noticed and the subscriber is dropped.
pub(crate) fn serve_replication(
    hub: &ReplicationHub,
    first: Frame,
    reader: &mut BufReader<Stream>,
    writer: &Arc<ConnWriter>,
    stop: &AtomicBool,
) {
    let mut frame = first;
    let mut current: Option<u64> = None;
    loop {
        if frame.kind == FrameKind::ReplSubscribe {
            if let Some(id) = current.take() {
                hub.unsubscribe(id);
            }
            match wire::decode_repl_subscribe(&frame.payload) {
                Ok((term, last_applied)) => {
                    match hub.subscribe(Arc::clone(writer), frame.request_id, term, last_applied) {
                        Ok(id) => current = Some(id),
                        Err(err) => {
                            send_error(writer, frame.request_id, &err);
                            break;
                        }
                    }
                }
                Err(wire_err) => {
                    send_error(writer, frame.request_id, &wire_err.into());
                    break;
                }
            }
        } else {
            let err = ServiceError::Transport {
                message: format!(
                    "unexpected {:?} frame on a replication connection",
                    frame.kind
                ),
            };
            send_error(writer, frame.request_id, &err);
        }
        match read_frame_polling(reader, stop) {
            Ok(Some(next)) => frame = next,
            Ok(None) | Err(_) => break,
        }
    }
    if let Some(id) = current {
        hub.unsubscribe(id);
    }
}

// ----- the follower ----------------------------------------------------

/// Where a follower connects to reach its primary.
#[derive(Clone, Debug)]
pub enum FollowTarget {
    /// A TCP address, `host:port`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl FollowTarget {
    fn connect(&self) -> io::Result<Stream> {
        match self {
            FollowTarget::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                // Delta frames are latency-sensitive heartbeat-sized
                // writes; never trade latency for coalescing.
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            #[cfg(unix)]
            FollowTarget::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// The replica-side subscription thread: connects to the primary,
/// subscribes, applies bootstrap and delta frames through the monitor,
/// and reconnects (requesting a fresh bootstrap) after any gap,
/// divergence, or transport failure.
pub struct Follower {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Follower {
    /// Spawns the follower thread for `hub`, retrying failed
    /// connections every `retry`.
    pub fn spawn(hub: Arc<ReplicationHub>, target: FollowTarget, retry: Duration) -> Follower {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("adminref-follower".into())
            .spawn(move || follow_loop(hub, target, thread_stop, retry))
            .ok();
        Follower { stop, handle }
    }

    /// Signals the thread to stop and joins it (a blocked read notices
    /// within one poll interval). Also runs on drop.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn follow_loop(
    hub: Arc<ReplicationHub>,
    target: FollowTarget,
    stop: Arc<AtomicBool>,
    retry: Duration,
) {
    while !stop.load(Ordering::SeqCst) && !hub.writable() {
        // Any failure — refused connection, transport error, gap,
        // divergence — lands here; the next round reconnects, and
        // `bootstrapped` decides whether it requests a fresh snapshot.
        let _ = follow_once(&hub, &target, &stop);
        if stop.load(Ordering::SeqCst) || hub.writable() {
            break;
        }
        thread::sleep(retry);
    }
}

/// One subscription: connect, subscribe, apply frames until an error
/// or stop/promote.
fn follow_once(hub: &ReplicationHub, target: &FollowTarget, stop: &AtomicBool) -> io::Result<()> {
    let stream = target.connect()?;
    stream.set_read_timeout(Some(FOLLOWER_READ_POLL))?;
    let mut writer = stream.try_clone()?;
    let monitor = hub.monitor();
    let last_applied = if hub.bootstrapped.load(Ordering::SeqCst) {
        Some(ReferenceMonitor::version(monitor))
    } else {
        None
    };
    let subscribe = wire::encode_repl_subscribe(hub.term(), last_applied);
    wire::write_frame(&mut writer, FrameKind::ReplSubscribe, 1, &subscribe)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) || hub.writable() {
            return Ok(());
        }
        let frame = match read_frame_polling(&mut reader, stop) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Err(io::Error::other("primary closed the connection")),
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        match frame.kind {
            FrameKind::ReplSnapshot => {
                let (term, epoch, state) =
                    wire::decode_repl_snapshot(&frame.payload).map_err(io::Error::other)?;
                if !hub.admit_term(term) {
                    return Err(io::Error::other("snapshot from deposed primary rejected"));
                }
                let (universe, policy, constraints) =
                    decode_state(&state).map_err(io::Error::other)?;
                monitor
                    .install_replica_state(universe, policy, epoch, constraints)
                    .map_err(io::Error::other)?;
                hub.seen_epoch.fetch_max(epoch, Ordering::SeqCst);
                hub.bootstrapped.store(true, Ordering::SeqCst);
            }
            FrameKind::ReplDelta => {
                let delta = wire::decode_repl_delta(&frame.payload).map_err(io::Error::other)?;
                if !hub.admit_term(delta.term) {
                    return Err(io::Error::other("delta from deposed primary rejected"));
                }
                hub.seen_epoch.fetch_max(delta.epoch, Ordering::SeqCst);
                if let Err(refusal) =
                    monitor.apply_replica_deltas(delta.epoch, &delta.deltas, delta.checksum)
                {
                    // Typed refusal: nothing was published. Reconnect
                    // with a fresh bootstrap to self-heal.
                    hub.bootstrapped.store(false, Ordering::SeqCst);
                    return Err(io::Error::other(refusal));
                }
            }
            FrameKind::Error => {
                let message = match wire::decode_error(&frame.payload) {
                    Ok(err) => err.to_string(),
                    Err(e) => e.to_string(),
                };
                return Err(io::Error::other(format!("primary refused: {message}")));
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected {other:?} frame on the replication stream"
                )))
            }
        }
    }
}

/// Connects to a primary, subscribes with no prior state, and returns
/// the bootstrap `(universe, policy, constraints, epoch, term)` — how a
/// replica process obtains the decode-context universe (and the
/// admission constraint set it must keep enforcing after a promotion)
/// before it can serve its own daemon. `timeout` bounds each socket
/// read.
pub fn fetch_bootstrap(
    target: &FollowTarget,
    timeout: Duration,
) -> io::Result<(Universe, Policy, ConstraintSet, u64, u64)> {
    let stream = target.connect()?;
    stream.set_read_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    wire::write_frame(
        &mut writer,
        FrameKind::ReplSubscribe,
        1,
        &wire::encode_repl_subscribe(0, None),
    )?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    loop {
        let frame = match wire::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Err(io::Error::other("primary closed before bootstrapping")),
            Err(e) => return Err(io::Error::other(e.to_string())),
        };
        match frame.kind {
            FrameKind::ReplSnapshot => {
                let (term, epoch, state) =
                    wire::decode_repl_snapshot(&frame.payload).map_err(io::Error::other)?;
                let (universe, policy, constraints) =
                    decode_state(&state).map_err(io::Error::other)?;
                return Ok((universe, policy, constraints, epoch, term));
            }
            FrameKind::Error => {
                let message = match wire::decode_error(&frame.payload) {
                    Ok(err) => err.to_string(),
                    Err(e) => e.to_string(),
                };
                return Err(io::Error::other(format!("primary refused: {message}")));
            }
            // The primary considered us caught up (epoch 0 == epoch 0):
            // an empty-history bootstrap has nothing to ship, so delta
            // frames may arrive first; skip anything else.
            _ => continue,
        }
    }
}

// ----- the service wrapper ---------------------------------------------

/// A [`PolicyService`] with a replication role: serves the full read
/// alphabet from the monitor's lock-free snapshots, refuses
/// `Submit`/`Compact`/`SetConstraints` with [`ServiceError::ReadOnly`]
/// while a replica, answers `Promote` by stopping its [`Follower`] and
/// becoming a writable primary under a bumped term, and reports its
/// [`ReplicationStatus`] in `Stats`.
pub struct ReplicatedService {
    monitor: Arc<ReferenceMonitor>,
    writes: GroupCommit,
    hub: Arc<ReplicationHub>,
    follower: Mutex<Option<Follower>>,
}

impl ReplicatedService {
    /// A writable primary whose published epochs stream to subscribers.
    pub fn primary(monitor: Arc<ReferenceMonitor>) -> ReplicatedService {
        let hub = ReplicationHub::new(Arc::clone(&monitor), ReplicationRole::Primary);
        ReplicatedService {
            monitor,
            writes: GroupCommit::new(),
            hub,
            follower: Mutex::new(None),
        }
    }

    /// A read-only replica following `target`. Pass the bootstrap term
    /// as `synced_term` when the monitor's state was already installed
    /// from a [`fetch_bootstrap`] (the follower then resumes the
    /// stream at its epoch instead of re-downloading the snapshot).
    pub fn replica(
        monitor: Arc<ReferenceMonitor>,
        target: FollowTarget,
        retry: Duration,
        synced_term: Option<u64>,
    ) -> ReplicatedService {
        let hub = ReplicationHub::new(Arc::clone(&monitor), ReplicationRole::Replica);
        if let Some(term) = synced_term {
            hub.mark_bootstrapped(term);
        }
        let follower = Follower::spawn(Arc::clone(&hub), target, retry);
        ReplicatedService {
            monitor,
            writes: GroupCommit::new(),
            hub,
            follower: Mutex::new(Some(follower)),
        }
    }

    /// This node's replication hub (role, term, subscribers).
    pub fn hub(&self) -> &Arc<ReplicationHub> {
        &self.hub
    }

    /// See [`MonitorService::with_write_gather`](crate::MonitorService::with_write_gather).
    pub fn with_write_gather(mut self, gather: Duration) -> Self {
        self.writes = GroupCommit::with_gather(gather);
        self
    }

    fn promote(&self) -> Result<Response, ServiceError> {
        // Stop the follower before flipping the role so no in-flight
        // upstream frame lands after this node starts accepting writes.
        let mut follower = self.follower.lock();
        if let Some(f) = follower.take() {
            f.stop();
        }
        let (term, epoch) = self.hub.promote();
        Ok(Response::Promoted { term, epoch })
    }

    fn serve(&self, request: Request) -> Result<Response, ServiceError> {
        match request {
            Request::Promote => self.promote(),
            Request::Submit { .. } | Request::Compact | Request::SetConstraints { .. }
                if !self.hub.writable() =>
            {
                Err(ServiceError::ReadOnly)
            }
            Request::Submit { commands } => self
                .writes
                .submit(&self.monitor, commands)
                .map(Response::Outcomes),
            Request::Stats => match dispatch(&self.monitor, Request::Stats)? {
                Response::Stats(mut stats) => {
                    stats.replication = Some(self.hub.status());
                    Ok(Response::Stats(stats))
                }
                other => Ok(other),
            },
            read => dispatch(&self.monitor, read),
        }
    }
}

impl PolicyService for ReplicatedService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.serve(request)
    }

    /// Same burst shaping as
    /// [`MonitorService::call_many`](crate::MonitorService): on a
    /// primary, the burst's `Submit`s enter the write combiner under
    /// one queue acquisition; on a replica they are refused without
    /// touching it.
    fn call_many(&self, requests: Vec<Request>) -> Vec<Result<Response, ServiceError>> {
        if !self.hub.writable() {
            return requests.into_iter().map(|r| self.serve(r)).collect();
        }
        enum Shaped {
            Write,
            Other(Request),
        }
        let mut writes: Vec<Vec<adminref_core::command::Command>> = Vec::new();
        let shaped: Vec<Shaped> = requests
            .into_iter()
            .map(|request| match request {
                Request::Submit { commands } => {
                    writes.push(commands);
                    Shaped::Write
                }
                other => Shaped::Other(other),
            })
            .collect();
        let mut write_results = self.writes.submit_many(&self.monitor, writes).into_iter();
        shaped
            .into_iter()
            .map(|entry| match entry {
                Shaped::Write => match write_results.next() {
                    Some(result) => result.map(Response::Outcomes),
                    // Unreachable: submit_many returns one result per
                    // enqueued request.
                    None => Err(ServiceError::Aborted),
                },
                Shaped::Other(other) => self.serve(other),
            })
            .collect()
    }
}
