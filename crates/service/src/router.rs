//! [`ServiceRouter`]: one process, many policies.
//!
//! The router maps tenant ids to independent [`MonitorService`]s —
//! separate universes, policies, sessions, audit logs, and (in durable
//! mode) separate store directories under one root. Tenants are opened
//! lazily on first use and evicted least-recently-used once more than
//! `max_open` are live, so a process can serve far more tenants than it
//! keeps resident.
//!
//! Isolation is structural: a request routed to tenant `a` executes
//! against a monitor that shares no mutable state with tenant `b`'s, so
//! no protocol request can observe or affect another tenant. Eviction
//! is invisible to correctness: an evicted durable tenant reopens from
//! its store (batches are synced at publication), and a tenant whose
//! handle from [`tenant`](ServiceRouter::tenant) is still held is
//! never evicted — otherwise a later open could create a second writer
//! over the same store directory while the old handle still serves.
//! The `max_open` cap is therefore soft with respect to outstanding
//! handles.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use adminref_core::policy::Policy;
use adminref_core::universe::Universe;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_store::PolicyStore;

use crate::protocol::{PolicyService, Request, Response, ServiceError};
use crate::service::MonitorService;

/// Produces a tenant's initial `(universe, policy)` when it is first
/// created (durable tenants only pay this on creation, not reopen).
pub type TenantStateFactory = Box<dyn Fn(&str) -> (Universe, Policy) + Send + Sync>;

/// Router configuration.
pub struct RouterConfig {
    /// Cap on concurrently open tenant monitors (≥ 1); the
    /// least-recently-used tenant beyond the cap is evicted.
    pub max_open: usize,
    /// Monitor configuration applied to every tenant.
    pub monitor: MonitorConfig,
    /// When set, tenants are durable: tenant `t` lives in
    /// `<durable_root>/<t>` and survives eviction and restarts. When
    /// `None`, tenants are in-memory and eviction discards their state.
    pub durable_root: Option<PathBuf>,
    /// When `false`, only tenants that already exist (open, or present
    /// under `durable_root`) are served; missing tenants answer
    /// [`ServiceError::UnknownTenant`] instead of being created.
    pub create_missing: bool,
    /// When `true` (the default), a durable tenant whose recovery
    /// replayed divergent log entries (`RecoveryReport::divergent > 0`
    /// — the log and snapshot are from different histories) is refused
    /// with [`ServiceError::Recovery`] rather than served from a state
    /// no serial history produced. Set `false` to serve it anyway; the
    /// report stays visible through `Response::Stats` either way.
    pub fail_on_divergence: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_open: 64,
            monitor: MonitorConfig::default(),
            durable_root: None,
            create_missing: true,
            fail_on_divergence: true,
        }
    }
}

struct RouterInner {
    open: HashMap<String, Arc<MonitorService>>,
    /// Open tenant ids, least-recently-used first.
    lru: Vec<String>,
    evictions: u64,
}

/// The multi-tenant router; see the module docs.
pub struct ServiceRouter {
    config: RouterConfig,
    factory: TenantStateFactory,
    inner: Mutex<RouterInner>,
}

impl ServiceRouter {
    /// A router whose tenants start from `factory(tenant_id)`.
    pub fn new(config: RouterConfig, factory: TenantStateFactory) -> Self {
        assert!(config.max_open >= 1, "need room for at least one tenant");
        ServiceRouter {
            config,
            factory,
            inner: Mutex::new(RouterInner {
                open: HashMap::new(),
                lru: Vec::new(),
                evictions: 0,
            }),
        }
    }

    /// Routes one request to `tenant`.
    pub fn call(&self, tenant: &str, request: Request) -> Result<Response, ServiceError> {
        self.tenant(tenant)?.call(request)
    }

    /// The tenant's service, opening it if necessary. The returned
    /// handle stays valid across eviction (eviction only drops the
    /// router's own reference).
    pub fn tenant(&self, tenant: &str) -> Result<Arc<MonitorService>, ServiceError> {
        validate_tenant_id(tenant)?;
        let mut inner = self.inner.lock();
        if let Some(service) = inner.open.get(tenant) {
            let service = Arc::clone(service);
            touch(&mut inner.lru, tenant);
            return Ok(service);
        }
        // Opening under the router lock keeps the cap exact and
        // deduplicates concurrent first requests to one open; tenant
        // opens are rare (cold start, post-eviction) and bounded by
        // snapshot-load cost.
        let service = Arc::new(self.open_tenant(tenant)?);
        inner.open.insert(tenant.to_string(), Arc::clone(&service));
        inner.lru.push(tenant.to_string());
        let RouterInner {
            open,
            lru,
            evictions,
        } = &mut *inner;
        while open.len() > self.config.max_open {
            // Evict the least-recently-used tenant *nobody else holds*:
            // dropping a service with live handles would let a later
            // open create a second monitor (and, durable, a second
            // writer on the same store directory — split brain) while
            // the old handle still serves. Handle-holding tenants are
            // skipped, so the cap is soft while handles are
            // outstanding; clones only happen under this lock or from
            // an existing handle, so the count check cannot race. The
            // just-opened tenant is pinned by `service` itself. Durable
            // state is synced best-effort (publication already synced
            // every batch).
            let Some(at) = lru
                .iter()
                .position(|t| open.get(t).is_some_and(|s| Arc::strong_count(s) == 1))
            else {
                break;
            };
            let victim = lru.remove(at);
            if let Some(evicted) = open.remove(&victim) {
                let _ = evicted.monitor().sync();
                *evictions += 1;
            }
        }
        Ok(service)
    }

    /// Number of currently open tenant monitors.
    pub fn open_count(&self) -> usize {
        self.inner.lock().open.len()
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    fn open_tenant(&self, tenant: &str) -> Result<MonitorService, ServiceError> {
        match &self.config.durable_root {
            None => {
                if !self.config.create_missing {
                    return Err(ServiceError::UnknownTenant(tenant.to_string()));
                }
                let (universe, policy) = (self.factory)(tenant);
                Ok(MonitorService::new(ReferenceMonitor::new(
                    universe,
                    policy,
                    self.config.monitor,
                )))
            }
            Some(root) => {
                let dir = root.join(tenant);
                let (store, report) = if dir.join("policy.snap").exists() {
                    let (store, report) = PolicyStore::open(&dir, self.config.monitor.auth_mode)?;
                    if report.divergent > 0 && self.config.fail_on_divergence {
                        return Err(ServiceError::Recovery {
                            tenant: tenant.to_string(),
                            divergent: report.divergent,
                        });
                    }
                    (store, Some(report))
                } else if self.config.create_missing {
                    let (universe, policy) = (self.factory)(tenant);
                    (
                        PolicyStore::create(&dir, universe, policy, self.config.monitor.auth_mode)?,
                        None,
                    )
                } else {
                    return Err(ServiceError::UnknownTenant(tenant.to_string()));
                };
                Ok(MonitorService::new(ReferenceMonitor::with_store_recovered(
                    store,
                    report,
                    self.config.monitor,
                )))
            }
        }
    }
}

/// Moves `tenant` to the most-recently-used end.
fn touch(lru: &mut Vec<String>, tenant: &str) {
    if let Some(at) = lru.iter().position(|t| t == tenant) {
        let t = lru.remove(at);
        lru.push(t);
    }
}

/// Tenant ids become directory names in durable mode, so they are
/// restricted to a safe alphabet: 1–64 chars of `[A-Za-z0-9_-]`.
fn validate_tenant_id(tenant: &str) -> Result<(), ServiceError> {
    let ok = !tenant.is_empty()
        && tenant.len() <= 64
        && tenant
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(ServiceError::InvalidTenant(tenant.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::command::Command;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Edge;
    use adminref_store::TempDir;

    fn tenant_factory() -> TenantStateFactory {
        Box::new(|tenant| {
            let mut b = PolicyBuilder::new()
                .assign("admin", "ops")
                .declare_user(&format!("user_{tenant}"))
                .declare_role("staff");
            let (user, staff) = {
                let u = b.universe_mut();
                (
                    u.find_user(&format!("user_{tenant}")).unwrap(),
                    u.find_role("staff").unwrap(),
                )
            };
            let g = b.universe_mut().grant_user_role(user, staff);
            b.assign_priv("ops", g).finish()
        })
    }

    fn grant_own_user(service: &MonitorService) -> bool {
        let snap = service.monitor().read_snapshot();
        let uni = snap.universe();
        let admin = uni.find_user("admin").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let user = uni
            .users()
            .find(|&u| uni.user_name(u).starts_with("user_"))
            .unwrap();
        service
            .submit(vec![Command::grant(admin, Edge::UserRole(user, staff))])
            .unwrap()[0]
            .executed()
    }

    #[test]
    fn tenants_are_isolated() {
        let router = ServiceRouter::new(RouterConfig::default(), tenant_factory());
        assert!(grant_own_user(&router.tenant("acme").unwrap()));
        assert!(grant_own_user(&router.tenant("globex").unwrap()));
        let acme = router.tenant("acme").unwrap();
        let globex = router.tenant("globex").unwrap();
        // Each tenant's universe only knows its own user; versions and
        // audit logs advanced independently.
        assert_eq!(acme.version().unwrap(), 1);
        assert_eq!(globex.version().unwrap(), 1);
        assert!(acme
            .monitor()
            .read_snapshot()
            .universe()
            .find_user("user_globex")
            .is_none());
        assert_eq!(router.open_count(), 2);
    }

    #[test]
    fn lru_eviction_caps_open_tenants() {
        let router = ServiceRouter::new(
            RouterConfig {
                max_open: 2,
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        router.tenant("a").unwrap();
        router.tenant("b").unwrap();
        router.tenant("a").unwrap(); // touch: a is now most-recent
        router.tenant("c").unwrap(); // evicts b
        assert_eq!(router.open_count(), 2);
        assert_eq!(router.evictions(), 1);
        // b reopens fresh (in-memory mode: state restarts).
        router.tenant("b").unwrap();
        assert_eq!(router.evictions(), 2);
    }

    #[test]
    fn eviction_skips_tenants_with_live_handles() {
        let router = ServiceRouter::new(
            RouterConfig {
                max_open: 1,
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        // Holding a's handle pins it: opening b exceeds the (soft) cap
        // without evicting a — evicting would let a later open create a
        // second monitor behind the live handle's back.
        let a = router.tenant("a").unwrap();
        router.tenant("b").unwrap();
        assert_eq!(router.open_count(), 2, "a is pinned by its handle");
        assert_eq!(router.evictions(), 0);
        // The same epoch counter answers through old handle and router:
        // still one monitor.
        a.submit(Vec::new()).unwrap();
        assert_eq!(
            Arc::as_ptr(&a),
            Arc::as_ptr(&router.tenant("a").unwrap()),
            "router still serves the pinned instance"
        );
        // Dropping the handle makes a evictable again.
        drop(a);
        router.tenant("c").unwrap();
        assert_eq!(router.open_count(), 1);
        assert_eq!(router.evictions(), 2, "a and b both evicted");
    }

    #[test]
    fn durable_tenants_survive_eviction() {
        let dir = TempDir::new("router-durable").unwrap();
        let router = ServiceRouter::new(
            RouterConfig {
                max_open: 1,
                durable_root: Some(dir.path().to_path_buf()),
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        assert!(grant_own_user(&router.tenant("acme").unwrap()));
        // Opening a second tenant evicts acme (cap 1)...
        router.tenant("globex").unwrap();
        assert_eq!(router.open_count(), 1);
        // ...but reopening acme recovers the granted edge from its store.
        let acme = router.tenant("acme").unwrap();
        let snap = acme.monitor().read_snapshot();
        let uni = snap.universe();
        let user = uni.find_user("user_acme").unwrap();
        let staff = uni.find_role("staff").unwrap();
        assert!(snap.policy().contains_edge(Edge::UserRole(user, staff)));
    }

    /// Seeds `<root>/<tenant>` with a store whose log only replays
    /// faithfully under ordered authorization, so reopening in explicit
    /// mode reports divergence.
    fn seed_divergent_tenant(root: &std::path::Path, tenant: &str) {
        use adminref_core::ordering::OrderingMode;
        use adminref_core::transition::AuthMode;
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let (uni, policy) = b.assign_priv("hr", g).finish();
        let jane = uni.find_user("jane").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let mode = AuthMode::Ordered(OrderingMode::Extended);
        let mut store = PolicyStore::create(&root.join(tenant), uni, policy, mode).unwrap();
        // Authorized only in ordered mode: replaying under explicit
        // authorization records a different outcome → divergent.
        let out = store
            .execute(&adminref_core::command::Command::grant(
                jane,
                Edge::UserRole(bob, dbusr2),
            ))
            .unwrap();
        assert!(out.executed());
        store.sync().unwrap();
    }

    #[test]
    fn divergent_recovery_is_refused_by_default_and_surfaced_when_allowed() {
        let dir = TempDir::new("router-divergent").unwrap();
        seed_divergent_tenant(dir.path(), "corrupt");
        let strict = ServiceRouter::new(
            RouterConfig {
                durable_root: Some(dir.path().to_path_buf()),
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        match strict.tenant("corrupt").map(|_| ()) {
            Err(ServiceError::Recovery { tenant, divergent }) => {
                assert_eq!(tenant, "corrupt");
                assert_eq!(divergent, 1);
            }
            other => panic!("expected Recovery refusal, got {other:?}"),
        }
        // Configured to serve anyway, the report is visible in Stats
        // instead of silently discarded.
        let permissive = ServiceRouter::new(
            RouterConfig {
                durable_root: Some(dir.path().to_path_buf()),
                fail_on_divergence: false,
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        let service = permissive.tenant("corrupt").unwrap();
        let stats = crate::protocol::PolicyService::stats(&service.as_ref()).unwrap();
        let report = stats.recovery.expect("report threaded to stats");
        assert_eq!(report.divergent, 1);
        assert_eq!(report.replayed, 1);
        // A clean tenant reports its (zero-divergence) recovery too.
        let clean = permissive.tenant("clean").unwrap();
        assert!(grant_own_user(&clean));
        drop(clean);
        drop(permissive);
        let reopened = ServiceRouter::new(
            RouterConfig {
                durable_root: Some(dir.path().to_path_buf()),
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        let clean = reopened.tenant("clean").unwrap();
        let stats = crate::protocol::PolicyService::stats(&clean.as_ref()).unwrap();
        let report = stats.recovery.expect("reopened store reports recovery");
        assert_eq!(report.divergent, 0);
    }

    #[test]
    fn tenant_ids_are_validated_and_existence_gated() {
        let router = ServiceRouter::new(
            RouterConfig {
                create_missing: false,
                ..RouterConfig::default()
            },
            tenant_factory(),
        );
        assert!(matches!(
            router.tenant("../escape"),
            Err(ServiceError::InvalidTenant(_))
        ));
        assert!(matches!(
            router.tenant(""),
            Err(ServiceError::InvalidTenant(_))
        ));
        assert!(matches!(
            router.tenant("ghost"),
            Err(ServiceError::UnknownTenant(_))
        ));
    }
}
