//! [`WireClient`]: a blocking [`PolicyService`] over a socket, so every
//! existing caller of the trait works transparently against a remote
//! `adminrefd`.
//!
//! ## Pipelining without a background thread
//!
//! One `WireClient` is safely shared by many threads, and concurrent
//! calls are pipelined over the single connection: each call stamps a
//! fresh request id, appends its frame under the writer lock, and
//! parks until the matching reply arrives. Instead of a dedicated
//! reader thread, the waiters elect a **reader lease** — the same
//! leader-election idiom as the [group-commit
//! combiner](crate::group_commit): whichever waiter finds the lease
//! free reads exactly one frame, deposits it in the matching waiter's
//! slot by request id, releases the lease and wakes everyone. Replies
//! may arrive out of order (the daemon answers slow requests from a
//! worker pool); the id match makes that invisible.
//!
//! ## Failure semantics
//!
//! A transport failure (connection refused or reset, a malformed frame
//! from the server, a clean server-side close) poisons the client:
//! the in-flight and all future calls return
//! [`ServiceError::Transport`]. Reconnecting means constructing a new
//! `WireClient` — sessions are per-connection on the server, so a new
//! connection starts with no live sessions either way.
//!
//! ## Example
//!
//! Serve an in-memory monitor on a Unix socket and call it through the
//! trait:
//!
//! ```
//! use std::sync::Arc;
//! use adminref_core::prelude::*;
//! use adminref_monitor::MonitorConfig;
//! use adminref_service::client::WireClient;
//! use adminref_service::daemon::{Daemon, WireListener};
//! use adminref_service::{MonitorService, PolicyService};
//!
//! let (uni, policy) = PolicyBuilder::new()
//!     .assign("diana", "nurse")
//!     .permit("nurse", "read", "t1")
//!     .finish();
//! let diana = uni.find_user("diana").unwrap();
//! let nurse = uni.find_role("nurse").unwrap();
//! let mut probe = uni.clone();
//! let read_t1 = probe.perm("read", "t1");
//!
//! let service = Arc::new(MonitorService::in_memory(
//!     uni.clone(),
//!     policy,
//!     MonitorConfig::default(),
//! ));
//! let dir = adminref_store::TempDir::new("wire-client-doc")?;
//! let sock = dir.path().join("adminrefd.sock");
//! let daemon = Daemon::spawn(service, uni, WireListener::unix(&sock)?)?;
//!
//! let client = WireClient::connect_unix(&sock)?;
//! let session = client.create_session(diana)?;
//! client.activate_role(session, nurse)?;
//! assert!(client.check_access(session, read_t1)?);
//!
//! daemon.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::daemon::Stream;
use crate::protocol::{PolicyService, Request, Response, ServiceError};
use crate::wire::{self, FrameKind};

/// Poisoning adds nothing here (every state transition is a plain field
/// write), so a panicking peer thread must not wedge everyone else —
/// same policy as the group-commit combiner.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A blocking [`PolicyService`] speaking the wire protocol over one
/// TCP or Unix-socket connection. See the [module docs](self) for the
/// sharing and failure model.
pub struct WireClient {
    writer: Mutex<BufWriter<Stream>>,
    /// Callers between announcing a write and performing it; lets the
    /// last writer in a contention burst flush the whole burst in one
    /// syscall (see `call_remote`).
    write_queue: AtomicUsize,
    reader: Mutex<BufReader<Stream>>,
    state: Mutex<ClientState>,
    wakeup: Condvar,
}

struct ClientState {
    next_id: u64,
    /// In-flight calls: request id → reply slot (`None` until the
    /// leasing reader deposits the reply).
    pending: HashMap<u64, Option<Result<Response, ServiceError>>>,
    /// Whether some waiter currently holds the reader lease.
    reader_leased: bool,
    /// Set on the first transport failure; poisons all calls.
    dead: Option<String>,
}

impl WireClient {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/response traffic: never trade latency for coalescing.
        let _ = stream.set_nodelay(true);
        WireClient::from_stream(Stream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<WireClient> {
        let stream = UnixStream::connect(path)?;
        WireClient::from_stream(Stream::Unix(stream))
    }

    fn from_stream(stream: Stream) -> io::Result<WireClient> {
        let write_half = stream.try_clone()?;
        Ok(WireClient {
            writer: Mutex::new(BufWriter::new(write_half)),
            write_queue: AtomicUsize::new(0),
            reader: Mutex::new(BufReader::new(stream)),
            state: Mutex::new(ClientState {
                next_id: 1,
                pending: HashMap::new(),
                reader_leased: false,
                dead: None,
            }),
            wakeup: Condvar::new(),
        })
    }

    fn transport(message: impl Into<String>) -> ServiceError {
        ServiceError::Transport {
            message: message.into(),
        }
    }

    /// Registers the call, writes its frame, and parks until the reply
    /// with the same id arrives.
    fn call_remote(&self, request: &Request) -> Result<Response, ServiceError> {
        let payload = wire::encode_request(request);
        let id = {
            let mut st = lock_unpoisoned(&self.state);
            if let Some(msg) = &st.dead {
                return Err(Self::transport(msg.clone()));
            }
            let id = st.next_id;
            st.next_id += 1;
            st.pending.insert(id, None);
            id
        };
        {
            // Coalesced flushes: when several threads submit in the
            // same instant (the common case right after a pipelined
            // batch completes), only the last one through the writer
            // lock pays the flush syscall — the burst leaves as one
            // socket write, arrives at the daemon in one read, and its
            // requests reach the group-commit combiner close enough
            // together to coalesce into one batch. A skipped flush is
            // always covered: the queued writer observed here must
            // itself write afterwards and repeat the same check.
            self.write_queue.fetch_add(1, Ordering::SeqCst);
            let mut w = lock_unpoisoned(&self.writer);
            self.write_queue.fetch_sub(1, Ordering::SeqCst);
            let written =
                wire::write_frame(&mut *w, FrameKind::Request, id, &payload).and_then(|()| {
                    if self.write_queue.load(Ordering::SeqCst) == 0 {
                        w.flush()
                    } else {
                        Ok(())
                    }
                });
            if let Err(e) = written {
                drop(w);
                let mut st = lock_unpoisoned(&self.state);
                st.pending.remove(&id);
                st.dead.get_or_insert_with(|| e.to_string());
                self.wakeup.notify_all();
                return Err(Self::transport(e.to_string()));
            }
        }
        self.await_reply(id)
    }

    fn await_reply(&self, id: u64) -> Result<Response, ServiceError> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if st.pending.get(&id).is_some_and(Option::is_some) {
                return match st.pending.remove(&id) {
                    Some(Some(result)) => result,
                    // Unreachable: the slot was just observed filled.
                    _ => Err(Self::transport("reply slot vanished")),
                };
            }
            if let Some(msg) = st.dead.clone() {
                st.pending.remove(&id);
                return Err(Self::transport(msg));
            }
            if !st.reader_leased {
                // Take the lease: with the state lock released, read
                // one frame plus everything else already buffered, then
                // deposit the whole burst and wake everyone at once.
                // Draining before notifying keeps pipelined callers
                // phase-locked: all waiters of a completed batch wake
                // together, their next requests contend on the writer
                // lock and leave as one coalesced flush, and the
                // daemon's combiner receives them as one group.
                st.reader_leased = true;
                drop(st);
                let (replies, failure) = self.read_available();
                st = lock_unpoisoned(&self.state);
                st.reader_leased = false;
                for (reply_id, result) in replies {
                    // An id nobody is waiting for (a waiter that
                    // already gave up) is dropped on the floor.
                    if let Some(slot) = st.pending.get_mut(&reply_id) {
                        *slot = Some(result);
                    }
                }
                if let Some(message) = failure {
                    st.dead.get_or_insert(message);
                }
                self.wakeup.notify_all();
                continue;
            }
            st = self.wakeup.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Reads one frame (blocking) plus every further frame already
    /// sitting in the read buffer, stopping at the first fatal
    /// transport/framing failure (returned alongside whatever was read
    /// before it; the failure poisons the client).
    #[allow(clippy::type_complexity)]
    fn read_available(&self) -> (Vec<(u64, Result<Response, ServiceError>)>, Option<String>) {
        let mut r = lock_unpoisoned(&self.reader);
        let mut replies = Vec::new();
        loop {
            match Self::read_one(&mut r) {
                Ok(reply) => replies.push(reply),
                Err(message) => return (replies, Some(message)),
            }
            if r.buffer().is_empty() {
                return (replies, None);
            }
        }
    }

    /// Reads one frame off the connection. `Ok` carries the reply and
    /// its id (which may belong to another waiter); `Err` is a fatal
    /// transport/framing failure that poisons the client.
    #[allow(clippy::type_complexity)]
    fn read_one(
        r: &mut BufReader<Stream>,
    ) -> Result<(u64, Result<Response, ServiceError>), String> {
        match wire::read_frame(&mut *r) {
            Ok(Some(frame)) => match frame.kind {
                FrameKind::Response => {
                    // One undecodable reply fails one call, not the
                    // whole client: framing is still synchronized.
                    let result = wire::decode_response(&frame.payload)
                        .map_err(|e| Self::transport(format!("undecodable response: {e}")));
                    Ok((frame.request_id, result))
                }
                FrameKind::Error => {
                    let result = match wire::decode_error(&frame.payload) {
                        Ok(service_err) => Err(service_err),
                        Err(e) => Err(Self::transport(format!("undecodable error frame: {e}"))),
                    };
                    Ok((frame.request_id, result))
                }
                FrameKind::Request => Err("server sent a request frame".into()),
                FrameKind::ReplSubscribe | FrameKind::ReplSnapshot | FrameKind::ReplDelta => {
                    Err("server sent a replication frame on a client connection".into())
                }
            },
            Ok(None) => Err("server closed the connection".into()),
            Err(e) => Err(e.to_string()),
        }
    }
}

impl PolicyService for WireClient {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.call_remote(&request)
    }
}
