//! Group commit: concurrent submitters coalesce into one monitor batch.
//!
//! The monitor's write path is serial by design (Definition 5 is a
//! serial semantics), so under concurrent writers the interesting
//! question is *how much work each pass over the writer lock retires*.
//! Per-call locking retires one request per acquisition — one WAL sync,
//! one `ReachIndex` rebuild, one published epoch *per request*. The
//! combiner here retires the whole in-flight queue per acquisition:
//!
//! 1. a submitter appends its request (commands + a completion slot) to
//!    the shared in-flight batch;
//! 2. if no leader is running, it elects itself leader; otherwise it
//!    just waits on its slot;
//! 3. the leader repeatedly drains *everything* queued, executes the
//!    drained group as **one** `submit_batch_outcomes` call — one
//!    Definition-5 serial execution, one WAL sync, one index rebuild,
//!    one published epoch — then fills each request's slot with its own
//!    slice of the outcomes, and exits when the queue is empty.
//!
//! Requests stay atomic and contiguous: a request's commands are never
//! interleaved with another's, so the outcome sequence equals *some*
//! serial interleaving of the submitters (the drain order), which the
//! `service_protocol` suite verifies against the single-lock
//! [`LockedMonitor`](adminref_monitor::LockedMonitor) by replaying the
//! audit order.
//!
//! On a mid-group backend failure the store's log-before-apply
//! discipline leaves exactly an applied prefix: requests fully inside
//! it succeed, the request straddling the failure gets
//! [`ServiceError::Backend`] carrying its own applied outcomes, and
//! requests after it get [`ServiceError::Aborted`] (not attempted, safe
//! to retry).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use adminref_core::command::Command;
use adminref_core::transition::StepOutcome;
use adminref_monitor::{MonitorError, ReferenceMonitor};

use crate::protocol::ServiceError;

/// The result a submitter receives for its own request.
pub type SubmitResult = Result<Vec<StepOutcome>, ServiceError>;

/// What a parked submitter finds in its completion slot.
#[derive(Default)]
enum SlotState {
    /// Not served yet; keep waiting.
    #[default]
    Empty,
    /// The request's own result; take it and return.
    Ready(SubmitResult),
    /// Leadership handoff: the retiring leader hit its tenure cap with
    /// this request still queued — run the leader loop, then wait for
    /// the result (the first drain of the new tenure serves it).
    Lead,
}

/// One request's completion slot, filled exactly once by a leader.
#[derive(Default)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

/// Locks a slot/queue mutex, surviving poison: these mutexes protect
/// plain data whose invariants hold between criticals, and the abort
/// guard must be able to unwedge waiters *during* a panic unwind.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Slot {
    fn fill(&self, result: SubmitResult) {
        *lock_unpoisoned(&self.state) = SlotState::Ready(result);
        self.ready.notify_one();
    }

    /// Abort-guard path: deliver an error only if no real result made
    /// it in before the panic.
    fn abort_if_empty(&self) {
        let mut state = lock_unpoisoned(&self.state);
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Ready(Err(ServiceError::Aborted));
            self.ready.notify_one();
        }
    }

    /// Tenure handoff: wake the parked submitter as the next leader.
    /// Only the current leader calls this, and only for an undrained
    /// request, so the slot is necessarily `Empty`.
    fn promote(&self) {
        *lock_unpoisoned(&self.state) = SlotState::Lead;
        self.ready.notify_one();
    }

    /// Test-only: takes a result that must already be present (the
    /// tests drive `execute_group` directly, so slots are pre-filled).
    #[cfg(test)]
    fn take(&self) -> SubmitResult {
        match std::mem::take(&mut *lock_unpoisoned(&self.state)) {
            SlotState::Ready(result) => result,
            other => panic!("slot not served: {:?}", std::mem::discriminant(&other)),
        }
    }

    /// Parks until the request is served, taking over leadership if
    /// the retiring leader hands it to us.
    fn wait_serving(&self, commit: &GroupCommit, monitor: &ReferenceMonitor) -> SubmitResult {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            match std::mem::take(&mut *state) {
                SlotState::Ready(result) => return result,
                SlotState::Lead => {
                    drop(state);
                    commit.lead(monitor);
                    state = lock_unpoisoned(&self.state);
                }
                SlotState::Empty => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }
}

/// One enqueued request.
struct PendingWrite {
    commands: Vec<Command>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct Queue {
    pending: Vec<PendingWrite>,
    leader_running: bool,
}

/// The write combiner; see the module docs.
///
/// One `GroupCommit` serializes the write path of one monitor (the
/// service owns both and always passes the same monitor in).
#[derive(Default)]
pub struct GroupCommit {
    queue: Mutex<Queue>,
    /// Leader gather window; zero (the default) drains immediately.
    gather: Duration,
    /// Size of the most recent executed group — the concurrency the
    /// last drain proved. The gather window only engages when this is
    /// at least 2, so a lone submitter never pays it.
    gather_hint: AtomicUsize,
}

impl GroupCommit {
    /// A combiner with an empty in-flight batch.
    pub fn new() -> Self {
        GroupCommit::default()
    }

    /// A combiner whose leader, after draining, keeps folding in
    /// late-arriving requests for up to `gather` before executing — but
    /// only when the previous drain saw at least two requests, so a
    /// lone submitter never pays the window.
    ///
    /// Local submitters re-enqueue fast enough that the immediate drain
    /// already forms good groups, so the default stays zero: a gather
    /// window would only add write latency. Over a **round-trip
    /// transport** the picture inverts — a completed batch's replies
    /// must cross the socket and wake the callers before their next
    /// requests appear, so an eager leader drains groups of one or two.
    /// A gather of a few tens of microseconds (well under one WAL sync)
    /// collects that straggler train and restores batch sizes, which is
    /// why the network daemon's serving path opts in (see
    /// [`MonitorService::with_write_gather`](crate::MonitorService::with_write_gather)).
    pub fn with_gather(gather: Duration) -> Self {
        GroupCommit {
            queue: Mutex::new(Queue::default()),
            gather,
            gather_hint: AtomicUsize::new(0),
        }
    }

    /// Submits `commands` as one atomic request, coalescing with every
    /// other request in flight. Blocks until a leader (possibly this
    /// thread) has executed the request, and returns the outcomes of
    /// exactly these `commands`.
    pub fn submit(&self, monitor: &ReferenceMonitor, commands: Vec<Command>) -> SubmitResult {
        let slot = Arc::new(Slot::default());
        let elected = {
            let mut queue = lock_unpoisoned(&self.queue);
            queue.pending.push(PendingWrite {
                commands,
                slot: Arc::clone(&slot),
            });
            if queue.leader_running {
                false
            } else {
                queue.leader_running = true;
                true
            }
        };
        if elected {
            self.lead(monitor);
        }
        slot.wait_serving(self, monitor)
    }

    /// Submits several independent requests at once: all of them join
    /// the in-flight batch under **one** queue acquisition, so they are
    /// guaranteed to land in the same drain (together with whatever
    /// else is in flight). Semantically identical to `requests.len()`
    /// threads each calling [`submit`](GroupCommit::submit)
    /// concurrently — every request stays atomic and contiguous with
    /// its own per-request result — but callable from one thread.
    ///
    /// This is the entry point for pipelined transports: a burst of
    /// `Submit` frames that arrived on a connection together would
    /// otherwise trickle into the combiner one worker wake-up at a
    /// time, and the leader (which drains immediately) would retire
    /// them in needlessly small groups.
    pub fn submit_many(
        &self,
        monitor: &ReferenceMonitor,
        requests: Vec<Vec<Command>>,
    ) -> Vec<SubmitResult> {
        if requests.is_empty() {
            return Vec::new();
        }
        let slots: Vec<Arc<Slot>> = (0..requests.len())
            .map(|_| Arc::new(Slot::default()))
            .collect();
        let elected = {
            let mut queue = lock_unpoisoned(&self.queue);
            for (commands, slot) in requests.into_iter().zip(&slots) {
                queue.pending.push(PendingWrite {
                    commands,
                    slot: Arc::clone(slot),
                });
            }
            if queue.leader_running {
                false
            } else {
                queue.leader_running = true;
                true
            }
        };
        if elected {
            self.lead(monitor);
        }
        slots
            .into_iter()
            .map(|slot| slot.wait_serving(self, monitor))
            .collect()
    }

    /// Leader loop: drain, execute, distribute. Exactly one thread
    /// runs this at a time. A tenure serves at most
    /// [`MAX_DRAINS_PER_TENURE`] drains; if work is still queued after
    /// that, leadership is handed to the oldest parked submitter, so a
    /// single unlucky thread is not starved serving everyone else's
    /// writes under sustained load. A panic escaping a drain (a bug in
    /// monitor/store code) trips the abort guard, which fails the
    /// drained and queued requests and clears the leader flag instead
    /// of wedging every future submit.
    fn lead(&self, monitor: &ReferenceMonitor) {
        for _ in 0..MAX_DRAINS_PER_TENURE {
            let mut group = {
                let mut queue = lock_unpoisoned(&self.queue);
                if queue.pending.is_empty() {
                    queue.leader_running = false;
                    return;
                }
                std::mem::take(&mut queue.pending)
            };
            let target = self.gather_hint.load(Ordering::Relaxed);
            if !self.gather.is_zero() && target >= 2 && group.len() < target {
                // The previous drain proved `target` concurrent
                // submitters, so the missing ones are mid-round-trip:
                // poll-fold the queue until they arrive, the window
                // closes, or the pipeline drains dry. Waiting here
                // cannot deadlock: leadership is already claimed, so
                // stragglers enqueue and park. A group already at
                // `target` skips the window outright — everyone is
                // aboard, and waiting would only stall the sync.
                let deadline = Instant::now() + self.gather;
                let mut idle_folds = 0;
                while group.len() < target && idle_folds < 8 && Instant::now() < deadline {
                    // Yield, not spin or sleep: on a loaded (or single)
                    // core the stragglers are runnable threads that need
                    // this core to finish their round trip, and a
                    // microsecond sleep overshoots severalfold from
                    // timer slack. Two consecutive empty folds mean
                    // every peer is parked waiting on this very drain,
                    // so waiting longer cannot grow the group.
                    std::thread::yield_now();
                    let mut queue = lock_unpoisoned(&self.queue);
                    if queue.pending.is_empty() {
                        idle_folds += 1;
                    } else {
                        idle_folds = 0;
                        group.append(&mut queue.pending);
                    }
                }
            }
            self.gather_hint.store(group.len(), Ordering::Relaxed);
            let guard = AbortGuard {
                commit: self,
                slots: group.iter().map(|r| Arc::clone(&r.slot)).collect(),
                armed: true,
            };
            execute_group(monitor, group);
            drop({
                let mut guard = guard;
                guard.armed = false;
                guard
            });
            // Round-trip transports need single-drain tenures: the
            // leader is a transport worker whose own callers' replies
            // are written only after this call returns, so leading a
            // second drain would hold those replies hostage for a whole
            // WAL sync — the released clients cannot re-submit, and
            // batches collapse to half the true concurrency. Handing
            // leadership to a parked submitter (below) lets the replies
            // flow while the next drain executes.
            if !self.gather.is_zero() {
                break;
            }
            // Batch-formation window: the submitters just released are
            // likely to have a next request; one yield lets them enqueue
            // before the next drain, growing it (costs ~µs against a
            // drain's index rebuild, and is a no-op with no runnable
            // peers).
            std::thread::yield_now();
        }
        // Tenure cap reached: retire, handing leadership to the oldest
        // queued request (the leader flag stays set across the handoff,
        // so no second leader can self-elect in the gap).
        let queue = lock_unpoisoned(&self.queue);
        match queue.pending.first() {
            Some(next) => next.slot.promote(),
            None => {
                let mut queue = queue;
                queue.leader_running = false;
            }
        }
    }
}

/// Upper bound on drains per leader tenure; bounds the elected
/// submitter's own latency to ~cap × drain time under sustained load.
const MAX_DRAINS_PER_TENURE: usize = 8;

/// Unwinds a panicking drain into failed requests instead of a wedged
/// combiner: every slot of the drained group that did not receive a
/// real result, and every request still queued, is aborted, and the
/// leader flag is cleared so the next submit can self-elect.
struct AbortGuard<'a> {
    commit: &'a GroupCommit,
    slots: Vec<Arc<Slot>>,
    armed: bool,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for slot in &self.slots {
            slot.abort_if_empty();
        }
        let pending = {
            let mut queue = lock_unpoisoned(&self.commit.queue);
            queue.leader_running = false;
            std::mem::take(&mut queue.pending)
        };
        for request in pending {
            request.slot.abort_if_empty();
        }
    }
}

/// Executes one drained group as a single monitor batch and fills every
/// slot with its request's own result.
///
/// An admission refusal of the *combined* batch must not poison the
/// whole group: the gate judged a candidate state no single request
/// asked for, and the refusal left the monitor untouched. With more
/// than one request aboard, the group is split and each request
/// re-executes as its own batch — clean requests apply (their own
/// epochs), violating ones get the typed [`ServiceError::Admission`].
fn execute_group(monitor: &ReferenceMonitor, group: Vec<PendingWrite>) {
    let combined: Vec<Command> = group
        .iter()
        .flat_map(|request| request.commands.iter().copied())
        .collect();
    let (outcomes, error) = monitor.submit_batch_outcomes(&combined);
    if group.len() > 1 && matches!(error, Some(MonitorError::Admission(_))) {
        for request in group {
            let (own, own_error) = monitor.submit_batch_outcomes(&request.commands);
            request.slot.fill(match own_error {
                None => Ok(own),
                Some(MonitorError::Store(store_error)) => Err(ServiceError::Backend {
                    applied: own,
                    error: store_error,
                }),
                Some(other) => Err(other.into()),
            });
        }
        return;
    }
    distribute(group, outcomes, error);
}

/// Splits the group batch's applied-prefix outcomes back into
/// per-request results.
///
/// With no error, `outcomes` covers every request. A *mid-batch* error
/// leaves a shorter prefix: the first request whose commands are not
/// fully inside it carries the error (with its own partial outcomes)
/// and every later request is aborted untouched. A *batch-final sync*
/// error leaves a full-length prefix — every command executed, was
/// audited, and published, but durability is in doubt — and every
/// submitter must hear that, so each request gets
/// [`ServiceError::Backend`] carrying its own outcomes.
fn distribute(group: Vec<PendingWrite>, outcomes: Vec<StepOutcome>, error: Option<MonitorError>) {
    let applied = outcomes.len();
    let total: usize = group.iter().map(|r| r.commands.len()).sum();
    if applied == total {
        match error {
            // Admission refuses before anything executes, so a refusal
            // with a full-length prefix means an all-empty group: every
            // request hears the typed refusal, not a backend failure.
            Some(MonitorError::Admission(report)) => {
                for request in group {
                    request
                        .slot
                        .fill(Err(ServiceError::Admission(report.clone())));
                }
                return;
            }
            Some(e) => {
                // The store's error type is not Clone (it wraps
                // io::Error), so each submitter gets a synthesized copy
                // of the message.
                let message = e.to_string();
                let mut cursor = 0usize;
                for request in group {
                    let end = cursor + request.commands.len();
                    request.slot.fill(Err(ServiceError::Backend {
                        applied: outcomes[cursor..end].to_vec(),
                        error: adminref_store::StoreError::Io(std::io::Error::other(
                            message.clone(),
                        )),
                    }));
                    cursor = end;
                }
                return;
            }
            None => {}
        }
    }
    let mut error = error;
    let mut cursor = 0usize;
    for request in group {
        let end = cursor + request.commands.len();
        if end <= applied {
            request.slot.fill(Ok(outcomes[cursor..end].to_vec()));
        } else if let Some(e) = error.take() {
            let partial = outcomes[cursor.min(applied)..applied].to_vec();
            request.slot.fill(Err(match e {
                MonitorError::Store(store_error) => ServiceError::Backend {
                    applied: partial,
                    error: store_error,
                },
                other => other.into(),
            }));
        } else {
            request.slot.fill(Err(ServiceError::Aborted));
        }
        cursor = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::transition::AuthMode;
    use adminref_core::universe::{Edge, Universe};
    use adminref_monitor::MonitorConfig;
    use adminref_store::{PolicyStore, TempDir};

    fn fixture() -> (Universe, adminref_core::policy::Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .declare_user("joe")
            .declare_role("staff")
            .declare_role("nurse");
        let (bob, joe, staff, nurse) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_user("joe").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_role("nurse").unwrap(),
            )
        };
        for priv_id in [
            b.universe_mut().grant_user_role(bob, staff),
            b.universe_mut().revoke_user_role(bob, staff),
            b.universe_mut().grant_user_role(joe, nurse),
            b.universe_mut().revoke_user_role(joe, nurse),
        ] {
            b = b.assign_priv("hr", priv_id);
        }
        b.finish()
    }

    /// Enqueue three requests by hand and run one leader drain: the
    /// distribution must slice the combined outcomes back per request.
    #[test]
    fn distribution_slices_outcomes_per_request() {
        let (uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let monitor = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
        let requests = [
            vec![Command::grant(jane, Edge::UserRole(bob, staff))],
            vec![
                Command::grant(jane, Edge::UserRole(joe, nurse)),
                Command::grant(bob, Edge::UserRole(jane, staff)), // refused
            ],
            vec![Command::revoke(jane, Edge::UserRole(bob, staff))],
        ];
        let slots: Vec<Arc<Slot>> = requests.iter().map(|_| Arc::new(Slot::default())).collect();
        let group = requests
            .iter()
            .zip(&slots)
            .map(|(commands, slot)| PendingWrite {
                commands: commands.clone(),
                slot: Arc::clone(slot),
            })
            .collect();
        execute_group(&monitor, group);
        let results: Vec<Vec<StepOutcome>> =
            slots.iter().map(|s| s.take().expect("applied")).collect();
        assert_eq!(results[0].len(), 1);
        assert!(results[0][0].executed());
        assert_eq!(results[1].len(), 2);
        assert!(results[1][0].executed());
        assert!(!results[1][1].executed(), "forged grant is refused");
        assert_eq!(results[2].len(), 1);
        assert!(results[2][0].executed());
        // One group, one epoch.
        assert_eq!(monitor.version(), 1);
        assert_eq!(monitor.audit_len(), 4);
    }

    /// A mid-group store failure: the request straddling the failure
    /// gets `Backend` with its own applied prefix, the one after gets
    /// `Aborted`, and the one fully inside the prefix succeeds.
    #[test]
    fn mid_group_failure_splits_prefix_error_abort() {
        let (uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let dir = TempDir::new("group-commit-fail").unwrap();
        let mut store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
        // Appends 0 and 1 succeed; append 2 (request B's second command)
        // fails once.
        store.inject_append_failure_after(2);
        let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
        let requests = [
            vec![Command::grant(jane, Edge::UserRole(bob, staff))],
            vec![
                Command::grant(jane, Edge::UserRole(joe, nurse)),
                Command::revoke(jane, Edge::UserRole(joe, nurse)),
            ],
            vec![Command::revoke(jane, Edge::UserRole(bob, staff))],
        ];
        let slots: Vec<Arc<Slot>> = requests.iter().map(|_| Arc::new(Slot::default())).collect();
        let group = requests
            .iter()
            .zip(&slots)
            .map(|(commands, slot)| PendingWrite {
                commands: commands.clone(),
                slot: Arc::clone(slot),
            })
            .collect();
        execute_group(&monitor, group);
        // Request A: fully inside the applied prefix.
        let a = slots[0].take().expect("request A applied");
        assert!(a[0].executed());
        // Request B: first command applied, second hit the failure.
        match slots[1].take() {
            Err(ServiceError::Backend { applied, .. }) => {
                assert_eq!(applied.len(), 1);
                assert!(applied[0].executed());
            }
            other => panic!("expected Backend error, got {other:?}"),
        }
        // Request C: never attempted.
        assert!(matches!(slots[2].take(), Err(ServiceError::Aborted)));
        // The published snapshot shows exactly the applied prefix: bob
        // granted, joe granted (B's first command), bob not yet revoked.
        let (_, live) = monitor.snapshot();
        assert!(live.contains_edge(Edge::UserRole(bob, staff)));
        assert!(live.contains_edge(Edge::UserRole(joe, nurse)));
        // And exactly the applied prefix (A's grant + B's first
        // command) was audited.
        assert_eq!(monitor.audit_len(), 2);
    }

    /// A batch-final sync failure (every command applied, the WAL sync
    /// that would make the batch durable failed): every submitter must
    /// hear it, each with its own applied outcomes — silently returning
    /// `Ok` would acknowledge writes that may not survive a crash.
    #[test]
    fn batch_final_sync_failure_reaches_every_submitter() {
        let (uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let dir = TempDir::new("group-commit-sync-fail").unwrap();
        let mut store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
        store.inject_sync_failure();
        let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
        let requests = [
            vec![Command::grant(jane, Edge::UserRole(bob, staff))],
            vec![
                Command::grant(jane, Edge::UserRole(joe, nurse)),
                Command::revoke(jane, Edge::UserRole(joe, nurse)),
            ],
        ];
        let slots: Vec<Arc<Slot>> = requests.iter().map(|_| Arc::new(Slot::default())).collect();
        let group = requests
            .iter()
            .zip(&slots)
            .map(|(commands, slot)| PendingWrite {
                commands: commands.clone(),
                slot: Arc::clone(slot),
            })
            .collect();
        execute_group(&monitor, group);
        for (slot, request) in slots.iter().zip(&requests) {
            match slot.take() {
                Err(ServiceError::Backend { applied, error }) => {
                    assert_eq!(applied.len(), request.len(), "own outcomes travel with it");
                    assert!(applied.iter().all(|o| o.executed()));
                    assert!(
                        error.to_string().contains("injected sync failure"),
                        "{error}"
                    );
                }
                other => panic!("expected Backend error, got {other:?}"),
            }
        }
        // The batch itself executed, was audited, and was published.
        assert_eq!(monitor.audit_len(), 3);
        assert_eq!(monitor.version(), 1);
        let (_, live) = monitor.snapshot();
        assert!(live.contains_edge(Edge::UserRole(bob, staff)));
    }

    /// The abort guard (armed during every drain) must convert a panic
    /// escaping monitor/store code into failed requests — drained and
    /// still-queued alike — and release leadership, so the combiner
    /// keeps serving instead of wedging every future submit.
    #[test]
    fn abort_guard_unwedges_slots_and_leadership() {
        let (uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let monitor = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
        let commit = GroupCommit::new();
        let drained = Arc::new(Slot::default());
        let queued = Arc::new(Slot::default());
        {
            let mut queue = lock_unpoisoned(&commit.queue);
            queue.leader_running = true;
            queue.pending.push(PendingWrite {
                commands: vec![Command::grant(jane, Edge::UserRole(bob, staff))],
                slot: Arc::clone(&queued),
            });
        }
        // Simulate a drain that died mid-flight: the guard drops armed.
        drop(AbortGuard {
            commit: &commit,
            slots: vec![Arc::clone(&drained)],
            armed: true,
        });
        assert!(matches!(drained.take(), Err(ServiceError::Aborted)));
        assert!(matches!(queued.take(), Err(ServiceError::Aborted)));
        {
            let queue = lock_unpoisoned(&commit.queue);
            assert!(!queue.leader_running, "leadership released");
            assert!(queue.pending.is_empty(), "queue drained");
        }
        // The combiner stays serviceable: the next submit self-elects
        // and completes normally.
        let out = commit
            .submit(
                &monitor,
                vec![Command::grant(jane, Edge::UserRole(bob, staff))],
            )
            .expect("combiner still serves after an aborted drain");
        assert!(out[0].executed());
    }

    /// Concurrent submitters: every request is answered, every command
    /// audited exactly once, and epochs count the drained groups (at
    /// most one per request, typically far fewer).
    #[test]
    fn concurrent_submitters_all_complete() {
        let (uni, policy) = fixture();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let joe = uni.find_user("joe").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let monitor = ReferenceMonitor::new(
            uni,
            policy,
            MonitorConfig {
                audit_capacity: 4096,
                ..MonitorConfig::default()
            },
        );
        let commit = GroupCommit::new();
        let rounds = 50usize;
        crossbeam::scope(|scope| {
            for (user, role) in [(bob, staff), (joe, nurse)] {
                let (commit, monitor) = (&commit, &monitor);
                scope.spawn(move |_| {
                    for _ in 0..rounds {
                        let outcomes = commit
                            .submit(
                                monitor,
                                vec![
                                    Command::grant(jane, Edge::UserRole(user, role)),
                                    Command::revoke(jane, Edge::UserRole(user, role)),
                                ],
                            )
                            .expect("in-memory submit");
                        assert_eq!(outcomes.len(), 2);
                        assert!(outcomes.iter().all(|o| o.executed()));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(monitor.audit_len(), 2 * 2 * rounds);
        assert!(monitor.version() <= 2 * rounds as u64);
        let (_, live) = monitor.snapshot();
        assert!(!live.contains_edge(Edge::UserRole(bob, staff)));
        assert!(!live.contains_edge(Edge::UserRole(joe, nurse)));
    }
}
