//! `adminrefd`: the network daemon serving a [`PolicyService`] over the
//! [`wire`] protocol on TCP or Unix sockets.
//!
//! ## Serving model
//!
//! One accept loop, one thread per connection, a small per-connection
//! worker pool for slow requests:
//!
//! * The **reader** thread of a connection decodes frames and answers
//!   cheap requests inline (access checks, session lifecycle, audit
//!   reads, version/stats, lint).
//! * **Slow requests** — `Submit`, `AnalyzeReach`, `CheckRefinement`,
//!   `Compact` — are handed to the connection's worker pool, so a
//!   single pipelined connection keeps several submissions in flight at
//!   once and the [group-commit combiner](crate::group_commit) can
//!   coalesce them into one batch. `Submit` frames that arrive
//!   back-to-back (one burst of buffered input) are dispatched as one
//!   unit and enter the combiner together via
//!   [`PolicyService::call_many`] — without this, a round-trip
//!   transport trickles them in one worker wake-up at a time and the
//!   leader drains needlessly small groups. Responses are written as
//!   they complete, matched by request id, possibly out of order.
//! * **Per-connection sessions**: sessions created over a connection
//!   are dropped when it closes, so a crashed client cannot leak live
//!   sessions into the monitor.
//!
//! ## Failure semantics
//!
//! A frame-synchronized failure (undecodable payload, out-of-range id,
//! wrong frame kind) is answered with an error frame carrying
//! [`ServiceError::Transport`] and the connection continues. A framing
//! failure (bad magic, unsupported version, oversized or truncated
//! frame) means the stream position is untrustworthy: the daemon sends
//! a best-effort error frame with request id `0`, then closes the
//! connection.
//!
//! ## Shutdown
//!
//! [`Daemon::shutdown`] (also run on drop) stops the accept loop, waits
//! for every connection thread to notice within one read-poll interval,
//! joins them, and removes a Unix socket file it bound.

use std::collections::HashSet;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use adminref_core::universe::Universe;
use parking_lot::Mutex;

use crate::protocol::{PolicyService, Request, Response, ServiceError};
use crate::wire::{self, Frame, FrameError, FrameHeader, FrameKind, WireError, HEADER_LEN};

/// Tuning knobs for a [`Daemon`].
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Worker threads per connection for slow requests. This bounds how
    /// many of one connection's submissions can be in flight — and thus
    /// coalescible by group commit — at once.
    pub workers_per_connection: usize,
    /// How often a blocked connection reader wakes to check for
    /// shutdown (the socket read timeout).
    pub read_poll: Duration,
    /// How often the accept loop wakes to check for shutdown.
    pub accept_poll: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers_per_connection: 8,
            read_poll: Duration::from_millis(100),
            accept_poll: Duration::from_millis(25),
        }
    }
}

/// A bound listening socket for [`Daemon::spawn`].
#[derive(Debug)]
pub enum WireListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener plus the path it is bound to (removed on
    /// shutdown).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl WireListener {
    /// Binds a TCP listener. Pass port `0` for an ephemeral port and
    /// read it back with [`Daemon::local_addr`].
    pub fn tcp(addr: impl ToSocketAddrs) -> io::Result<WireListener> {
        Ok(WireListener::Tcp(TcpListener::bind(addr)?))
    }

    /// Binds a Unix-domain listener at `path`, removing a stale socket
    /// file left by a previous run first.
    #[cfg(unix)]
    pub fn unix(path: impl AsRef<Path>) -> io::Result<WireListener> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file from a crashed daemon would fail the
        // bind; removing it is the conventional named-socket hygiene.
        let _ = std::fs::remove_file(&path);
        Ok(WireListener::Unix(UnixListener::bind(&path)?, path))
    }
}

/// A running `adminrefd` instance: accept loop plus per-connection
/// threads, all joined on [`shutdown`](Daemon::shutdown).
pub struct Daemon {
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    local_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl Daemon {
    /// Starts serving `service` on `listener` with default tuning.
    ///
    /// `universe` is the decode context for incoming requests (the
    /// serving store's universe): ids on the wire are resolved — and
    /// bounds-checked — against it.
    pub fn spawn(
        service: Arc<dyn PolicyService>,
        universe: Universe,
        listener: WireListener,
    ) -> io::Result<Daemon> {
        Daemon::spawn_with(service, universe, listener, DaemonConfig::default())
    }

    /// [`spawn`](Daemon::spawn) with explicit tuning.
    pub fn spawn_with(
        service: Arc<dyn PolicyService>,
        universe: Universe,
        listener: WireListener,
        config: DaemonConfig,
    ) -> io::Result<Daemon> {
        Daemon::spawn_replicated(service, universe, listener, config, None)
    }

    /// [`spawn_with`](Daemon::spawn_with) plus a replication hub:
    /// connections whose first frame is a
    /// [`FrameKind::ReplSubscribe`](crate::wire::FrameKind)
    /// are handed to the hub and stream delta frames instead of serving
    /// requests. Without a hub, such frames are answered with a
    /// transport error.
    pub fn spawn_replicated(
        service: Arc<dyn PolicyService>,
        universe: Universe,
        listener: WireListener,
        config: DaemonConfig,
        hub: Option<Arc<crate::replication::ReplicationHub>>,
    ) -> io::Result<Daemon> {
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let universe = Arc::new(universe);

        let (local_addr, unix_path) = match &listener {
            WireListener::Tcp(l) => (l.local_addr().ok(), None),
            #[cfg(unix)]
            WireListener::Unix(_, path) => (None, Some(path.clone())),
        };

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("adminrefd-accept".into())
                .spawn(move || accept_loop(listener, service, universe, stop, conns, config, hub))?
        };

        Ok(Daemon {
            stop,
            accept: Some(accept),
            conns,
            local_addr,
            #[cfg(unix)]
            unix_path,
        })
    }

    /// The bound TCP address (`None` for Unix listeners) — how a test
    /// or operator recovers an ephemeral port.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// `true` once shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains and joins every connection, removes the
    /// Unix socket file. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock());
        for handle in handles {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ----- the accept loop -------------------------------------------------

/// One accepted connection, abstracting over the two socket families.
/// Shared with [`crate::client`], whose sockets are the same two
/// families.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn shutdown_both(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn accept_loop(
    listener: WireListener,
    service: Arc<dyn PolicyService>,
    universe: Arc<Universe>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: DaemonConfig,
    hub: Option<Arc<crate::replication::ReplicationHub>>,
) {
    // Nonblocking accept + stop polling: std offers no portable way to
    // interrupt a blocking accept, and a self-connect wakeup would need
    // the listener's own address family plumbed through.
    let nonblocking_ok = match &listener {
        WireListener::Tcp(l) => l.set_nonblocking(true).is_ok(),
        #[cfg(unix)]
        WireListener::Unix(l, _) => l.set_nonblocking(true).is_ok(),
    };
    if !nonblocking_ok {
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        let accepted = match &listener {
            WireListener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            WireListener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                if let Stream::Tcp(s) = &stream {
                    // Request/response traffic: never trade latency for
                    // coalescing.
                    let _ = s.set_nodelay(true);
                }
                let service = Arc::clone(&service);
                let universe = Arc::clone(&universe);
                let stop = Arc::clone(&stop);
                let hub = hub.clone();
                let spawned = thread::Builder::new()
                    .name("adminrefd-conn".into())
                    .spawn(move || handle_connection(stream, service, universe, stop, config, hub));
                match spawned {
                    Ok(handle) => conns.lock().push(handle),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(config.accept_poll);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A failed accept (EMFILE, reset during handshake) is not a
            // reason to stop serving other clients.
            Err(_) => thread::sleep(config.accept_poll),
        }
    }
}

// ----- one connection --------------------------------------------------

/// Whether a request is answered inline by the reader or handed to the
/// worker pool. Session-lifecycle requests must stay inline: the reader
/// owns the per-connection session set.
fn is_slow(request: &Request) -> bool {
    matches!(
        request,
        Request::Submit { .. }
            | Request::AnalyzeReach { .. }
            | Request::CheckRefinement { .. }
            | Request::Compact
            | Request::Analyze { .. }
            | Request::SetConstraints { .. }
    )
}

fn handle_connection(
    stream: Stream,
    service: Arc<dyn PolicyService>,
    universe: Arc<Universe>,
    stop: Arc<AtomicBool>,
    config: DaemonConfig,
    hub: Option<Arc<crate::replication::ReplicationHub>>,
) {
    // The accepted socket is blocking; the read timeout turns the
    // reader into a shutdown-polling loop without busy-waiting.
    if stream.set_read_timeout(Some(config.read_poll)).is_err() {
        return;
    }
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(ConnWriter::new(clone)),
        Err(_) => return,
    };
    // Buffered reads pull a whole burst of pipelined frames out of the
    // kernel in one syscall, and `buffer()` tells the loop below when
    // more frames are already here (= keep accumulating the burst).
    let mut reader = BufReader::new(stream);

    // Worker pool: a shared channel feeds slow requests to
    // `workers_per_connection` threads; each writes its own replies. A
    // message is one dispatch unit: a single request, or a burst of
    // `Submit`s that must enter the combiner together.
    let (tx, rx) = mpsc::channel::<Vec<(u64, Request)>>();
    let rx = Arc::new(Mutex::new(rx));
    let mut workers = Vec::with_capacity(config.workers_per_connection);
    for _ in 0..config.workers_per_connection.max(1) {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let writer = Arc::clone(&writer);
        let spawned = thread::Builder::new()
            .name("adminrefd-worker".into())
            .spawn(move || loop {
                // Hold the receiver lock only across the recv itself so
                // idle workers queue up behind it, not behind a serve.
                let msg = { rx.lock().recv() };
                match msg {
                    Ok(burst) => serve_burst(&*service, &writer, burst),
                    Err(_) => break,
                }
            });
        if let Ok(handle) = spawned {
            workers.push(handle);
        }
    }

    // Sessions created over this connection, dropped when it closes.
    let mut sessions: HashSet<u64> = HashSet::new();
    // Slow requests of the burst currently being read, dispatched when
    // the buffered input runs dry.
    let mut burst: Vec<(u64, Request)> = Vec::new();

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame_polling(&mut reader, &stop) {
            Ok(Some(frame)) => frame,
            // Clean EOF, transport failure, or shutdown: nothing more
            // to say to this peer.
            Ok(None) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Wire(wire_err)) => {
                // The stream position is untrustworthy after a framing
                // violation: answer once (request id 0), then close.
                send_error(&writer, 0, &wire_err.into());
                break;
            }
        };
        if frame.kind == FrameKind::ReplSubscribe {
            match hub.as_deref() {
                // The connection becomes a replication stream; when the
                // serve returns the peer is gone and we tear down.
                Some(hub) => {
                    crate::replication::serve_replication(hub, frame, &mut reader, &writer, &stop);
                    break;
                }
                None => {
                    let err = ServiceError::Transport {
                        message: "replication is not enabled on this daemon".into(),
                    };
                    send_error(&writer, frame.request_id, &err);
                    continue;
                }
            }
        }
        if frame.kind != FrameKind::Request {
            let err = ServiceError::Transport {
                message: format!("expected a request frame, got {:?}", frame.kind),
            };
            send_error(&writer, frame.request_id, &err);
            continue;
        }
        let request = match wire::decode_request(&frame.payload, &universe)
            .and_then(|req| wire::validate_request(&req, &universe).map(|()| req))
        {
            Ok(request) => request,
            Err(wire_err) => {
                send_error(&writer, frame.request_id, &wire_err.into());
                continue;
            }
        };
        if is_slow(&request) {
            burst.push((frame.request_id, request));
            if reader.buffer().is_empty() && !dispatch_burst(&tx, &mut burst) {
                break;
            }
            continue;
        }
        // Inline path; watch session lifecycle for disconnect cleanup.
        let result = service.call(request.clone());
        match (&request, &result) {
            (Request::CreateSession { .. }, Ok(Response::SessionCreated(sid))) => {
                sessions.insert(sid.raw());
            }
            (Request::DropSession { session }, Ok(Response::SessionDropped(true))) => {
                sessions.remove(&session.raw());
            }
            _ => {}
        }
        send_result(&writer, frame.request_id, &result);
    }

    // Drain: dispatch any still-accumulating burst, close the channel,
    // let in-flight slow requests finish and answer, then drop this
    // connection's surviving sessions.
    let _ = dispatch_burst(&tx, &mut burst);
    drop(tx);
    for handle in workers {
        let _ = handle.join();
    }
    for raw in sessions {
        let _ = service.call(Request::DropSession {
            session: adminref_monitor::SessionId::from_raw(raw),
        });
    }
    reader.get_ref().shutdown_both();
}

/// Hands an accumulated burst to the worker pool: `Submit`s go as one
/// unit (same combiner drain), other slow requests each to their own
/// worker so an analysis does not serialize behind the writes. Returns
/// `false` when the pool is gone.
fn dispatch_burst(tx: &mpsc::Sender<Vec<(u64, Request)>>, burst: &mut Vec<(u64, Request)>) -> bool {
    let mut submits = Vec::new();
    for entry in burst.drain(..) {
        if matches!(entry.1, Request::Submit { .. }) {
            submits.push(entry);
        } else if tx.send(vec![entry]).is_err() {
            return false;
        }
    }
    submits.is_empty() || tx.send(submits).is_ok()
}

/// Serves one dispatch unit. Every id gets an answer even if a
/// misbehaving service returns too few results for a burst — an
/// unanswered id would strand the client's call forever.
fn serve_burst(service: &dyn PolicyService, writer: &ConnWriter, mut burst: Vec<(u64, Request)>) {
    if burst.len() == 1 {
        if let Some((id, request)) = burst.pop() {
            serve_one(service, writer, id, request);
        }
        return;
    }
    let (ids, requests): (Vec<u64>, Vec<Request>) = burst.into_iter().unzip();
    let mut results = service.call_many(requests).into_iter();
    // Encode outside the writer lock, then ship the whole burst's
    // replies in one write + one flush: one syscall and one client
    // wake-up instead of one per reply, which matters on the group
    // commit path where the reply train gates the next batch.
    let frames: Vec<(FrameKind, u64, Vec<u8>)> = ids
        .into_iter()
        .map(|id| match results.next() {
            Some(Ok(response)) => (FrameKind::Response, id, wire::encode_response(&response)),
            Some(Err(err)) => (FrameKind::Error, id, wire::encode_error(&err)),
            // A misbehaving `call_many` that returned too few results
            // must still answer every id, or the client hangs forever.
            None => (
                FrameKind::Error,
                id,
                wire::encode_error(&ServiceError::Aborted),
            ),
        })
        .collect();
    writer.send_many(&frames);
}

/// The shared write half of one connection, with **coalesced flushes**:
/// a sender skips its flush when another sender is already queued on
/// the writer lock — the last sender in any contention burst flushes
/// everyone's frames in one syscall. When a drained group-commit batch
/// completes, its workers finish nearly simultaneously, so their
/// replies leave in one socket write (and arrive in one client read)
/// instead of one syscall each.
pub(crate) struct ConnWriter {
    writer: Mutex<BufWriter<Stream>>,
    /// Senders between their queue announcement and their write. A
    /// sender that observes this nonzero after writing may skip its
    /// flush: the queued sender is guaranteed to write after it and
    /// repeat the same check.
    queued: AtomicUsize,
}

impl ConnWriter {
    fn new(stream: Stream) -> ConnWriter {
        ConnWriter {
            writer: Mutex::new(BufWriter::new(stream)),
            queued: AtomicUsize::new(0),
        }
    }

    pub(crate) fn send(&self, kind: FrameKind, id: u64, payload: &[u8]) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        let mut w = self.writer.lock();
        // Decrement before writing (not after) so a panic inside the
        // write cannot strand the count above zero and stall flushes.
        self.queued.fetch_sub(1, Ordering::SeqCst);
        // A write failure means the peer is gone; the reader will see
        // the closed stream and tear the connection down.
        let _ = wire::write_frame(&mut *w, kind, id, payload);
        if self.queued.load(Ordering::SeqCst) == 0 {
            let _ = w.flush();
        }
    }

    /// [`send`](ConnWriter::send) for a whole burst's replies: one lock
    /// acquisition, one flush.
    fn send_many(&self, frames: &[(FrameKind, u64, Vec<u8>)]) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        let mut w = self.writer.lock();
        self.queued.fetch_sub(1, Ordering::SeqCst);
        for (kind, id, payload) in frames {
            let _ = wire::write_frame(&mut *w, *kind, *id, payload);
        }
        if self.queued.load(Ordering::SeqCst) == 0 {
            let _ = w.flush();
        }
    }
}

fn serve_one(service: &dyn PolicyService, writer: &ConnWriter, id: u64, request: Request) {
    let result = service.call(request);
    send_result(writer, id, &result);
}

fn send_result(writer: &ConnWriter, id: u64, result: &Result<Response, ServiceError>) {
    let (kind, payload) = match result {
        Ok(response) => (FrameKind::Response, wire::encode_response(response)),
        Err(err) => (FrameKind::Error, wire::encode_error(err)),
    };
    writer.send(kind, id, &payload);
}

pub(crate) fn send_error(writer: &ConnWriter, id: u64, err: &ServiceError) {
    writer.send(FrameKind::Error, id, &wire::encode_error(err));
}

/// [`wire::read_frame`] over a socket with a read timeout: timeouts
/// mid-wait poll the stop flag and retry, preserving any bytes already
/// read (a `read_exact` would lose them and desynchronize the stream).
pub(crate) fn read_frame_polling<R: Read>(
    stream: &mut R,
    stop: &AtomicBool,
) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    if !fill_polling(stream, &mut header, stop, true)? {
        return Ok(None);
    }
    let header = FrameHeader::parse(&header)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    if !fill_polling(stream, &mut payload, stop, false)? {
        return Err(FrameError::Wire(WireError::Truncated));
    }
    Ok(Some(Frame {
        kind: header.kind,
        request_id: header.request_id,
        payload,
    }))
}

/// Fills `buf`, polling `stop` across read timeouts. Returns `false`
/// for a clean stop or an EOF at offset zero when `eof_ok` (a peer
/// closing between frames); EOF mid-buffer is [`WireError::Truncated`].
fn fill_polling<R: Read>(
    stream: &mut R,
    buf: &mut [u8],
    stop: &AtomicBool,
    eof_ok: bool,
) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(FrameError::Wire(WireError::Truncated));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}
