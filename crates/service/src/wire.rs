//! The binary wire format of the daemon: length-prefixed, versioned
//! frames carrying the [`Request`]/[`Response`]/[`ServiceError`]
//! alphabet of [`protocol`](crate::protocol), canonically encoded with
//! the store's LEB128 codec primitives.
//!
//! The normative description lives in `specs/wire_protocol.md` at the
//! repository root; this module is its executable counterpart, and a
//! golden-bytes fixture test (`tests/wire_codec.rs`) pins the two
//! together so they cannot drift. The essentials:
//!
//! * **Frame** = 20-byte header + payload. Header: magic `"ARFW"`,
//!   version byte ([`WIRE_VERSION`]), kind byte ([`FrameKind`]), two
//!   reserved zero bytes, payload length (`u32` LE, capped at
//!   [`MAX_PAYLOAD`]), request id (`u64` LE, echoed verbatim in the
//!   reply so pipelined callers can match out-of-order responses).
//! * **Payload** = a varint variant tag followed by the variant's
//!   fields, reusing [`adminref_store::codec`] primitives (varints,
//!   length-prefixed UTF-8 strings, edge/command/policy encodings).
//! * **Errors are typed, never panics.** Every malformed input —
//!   truncated frame, bad magic, future version, unknown tag, trailing
//!   bytes, out-of-range id — decodes to a [`WireError`] variant; the
//!   daemon answers with an error frame or drops the connection, and a
//!   fuzzing client cannot take the server down.
//!
//! Ids on the wire are raw interning indices, valid only against the
//! serving store's universe: client and server must be built from the
//! same policy source (deterministic interning makes ids reproducible).
//! [`validate_request`] is the server-side boundary check that rejects
//! out-of-range ids before they can reach index-based analysis code.
//!
//! ## Example
//!
//! A request crosses a byte stream and comes back out typed:
//!
//! ```
//! use adminref_core::prelude::*;
//! use adminref_service::wire::{self, FrameKind};
//! use adminref_service::Request;
//!
//! let (uni, _policy) = PolicyBuilder::new()
//!     .assign("diana", "nurse")
//!     .permit("nurse", "read", "t1")
//!     .finish();
//! let mut probe = uni.clone();
//! let perm = probe.perm("read", "t1");
//! let request = Request::AnalyzeReach {
//!     entity: Entity::User(uni.find_user("diana").unwrap()),
//!     perm,
//!     config: SafetyConfig::default(),
//! };
//!
//! // Client side: payload + frame onto any `Write`.
//! let mut stream = Vec::new();
//! wire::write_frame(&mut stream, FrameKind::Request, 7, &wire::encode_request(&request))
//!     .unwrap();
//!
//! // Server side: frame off any `Read`, decode against the universe.
//! let frame = wire::read_frame(&mut stream.as_slice()).unwrap().expect("one frame");
//! assert_eq!((frame.kind, frame.request_id), (FrameKind::Request, 7));
//! let decoded = wire::decode_request(&frame.payload, &uni).unwrap();
//! wire::validate_request(&decoded, &uni).unwrap();
//! assert!(matches!(decoded, Request::AnalyzeReach { .. }));
//! ```

use std::io::{self, Read, Write};

use adminref_core::admission::{AdmissionReport, EdgeStatus, ImpactReport, PermFlip, StatusChange};
use adminref_core::command::CommandQueue;
use adminref_core::ids::{ActionId, Entity, ObjectId, Perm, PrivId, RoleId, UserId};
use adminref_core::lint::{Confirmation, Finding, FindingKind, LintReport, Severity};
use adminref_core::ordering::OrderingMode;
use adminref_core::reach::EdgeDelta;
use adminref_core::refinement::RefinementViolation;
use adminref_core::safety::{ReachabilityAnswer, SafetyConfig, Truncation};
use adminref_core::session::SessionError;
use adminref_core::transition::{AuthMode, Authorization, StepOutcome};
use adminref_core::universe::{Edge, Universe};
use adminref_monitor::{AuditEvent, Decision, SessionId};
use adminref_store::codec::{
    get_command, get_constraints, get_edge, get_policy, get_string, get_varint, put_command,
    put_constraints, put_edge, put_policy, put_string, put_varint, CodecError,
};
use adminref_store::{RecoveryReport, StoreError};
use bytes::{Buf, BufMut};

use crate::protocol::{
    RefinementDirection, RefinementReply, ReplicationRole, ReplicationStatus, Request, Response,
    ServiceError, ServiceStats, VersionInfo,
};

/// The four magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"ARFW";

/// The wire protocol version this build speaks. Bump on any change to
/// the frame layout or a variant encoding; `specs/wire_protocol.md`
/// must name the same number (CI greps for it).
///
/// Version history: 1 = the original request/response protocol; 2 =
/// replication (the `Version` response gained the state checksum,
/// `Stats` gained checksum + replication status, and the
/// `ReplSubscribe`/`ReplSnapshot`/`ReplDelta` frame kinds were added);
/// 3 = admission control (request tags 15 `Analyze` / 16
/// `SetConstraints` / 17 `GetConstraints`, response tags 14 `Impact` /
/// 15 `Constraints`, error tag 11 `Admission`, lint findings gained the
/// confirmation option and the `frozen-edge-violation` kind, and the
/// `ReplSnapshot` state blob carries the constraint set).
pub const WIRE_VERSION: u8 = 3;

/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Maximum payload a peer may send (16 MiB). A header announcing more
/// is rejected before any payload allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

// ----- frames ----------------------------------------------------------

/// What a frame carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// A [`Request`] payload (client → server).
    Request,
    /// A [`Response`] payload (server → client, success).
    Response,
    /// A [`ServiceError`] payload (server → client, failure).
    Error,
    /// A replication subscription (replica → primary): term + the last
    /// epoch the replica applied, if any. Answered by a `ReplSnapshot`
    /// (when the replica needs a bootstrap) and then a `ReplDelta`
    /// stream.
    ReplSubscribe,
    /// A replication bootstrap (primary → replica): term + epoch + the
    /// full CRC-framed `(universe, policy, constraints)` state at that
    /// epoch.
    ReplSnapshot,
    /// One replicated epoch (primary → replica): term + epoch + the
    /// batch's edge deltas + the post-apply state checksum.
    ReplDelta,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Error => 3,
            FrameKind::ReplSubscribe => 4,
            FrameKind::ReplSnapshot => 5,
            FrameKind::ReplDelta => 6,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Error),
            4 => Ok(FrameKind::ReplSubscribe),
            5 => Ok(FrameKind::ReplSnapshot),
            6 => Ok(FrameKind::ReplDelta),
            other => Err(WireError::BadFrameKind(other)),
        }
    }
}

/// A parsed frame header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameHeader {
    /// What the payload decodes as.
    pub kind: FrameKind,
    /// Payload length in bytes (already validated `<=` [`MAX_PAYLOAD`]).
    pub payload_len: u32,
    /// Caller-chosen correlation id, echoed in the reply.
    pub request_id: u64,
}

impl FrameHeader {
    /// Serializes the header into its fixed 20-byte layout.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..4].copy_from_slice(&WIRE_MAGIC);
        h[4] = WIRE_VERSION;
        h[5] = self.kind.to_byte();
        // h[6..8] reserved, zero.
        h[8..12].copy_from_slice(&self.payload_len.to_le_bytes());
        h[12..20].copy_from_slice(&self.request_id.to_le_bytes());
        h
    }

    /// Parses and validates a header: magic, version, kind, size cap.
    pub fn parse(bytes: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
        if bytes[0..4] != WIRE_MAGIC {
            let mut magic = [0u8; 4];
            magic.copy_from_slice(&bytes[0..4]);
            return Err(WireError::BadMagic(magic));
        }
        if bytes[4] != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion {
                got: bytes[4],
                supported: WIRE_VERSION,
            });
        }
        let kind = FrameKind::from_byte(bytes[5])?;
        // bytes[6..8] are reserved: senders write zero, receivers ignore.
        let payload_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len: payload_len,
                max: MAX_PAYLOAD,
            });
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[12..20]);
        Ok(FrameHeader {
            kind,
            payload_len,
            request_id: u64::from_le_bytes(id),
        })
    }
}

/// One complete frame, read off a stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// What the payload decodes as.
    pub kind: FrameKind,
    /// The correlation id from the header.
    pub request_id: u64,
    /// The raw payload (decode with [`decode_request`],
    /// [`decode_response`] or [`decode_error`] per `kind`).
    pub payload: Vec<u8>,
}

// ----- errors ----------------------------------------------------------

/// A typed decoding or framing failure. Malformed input always lands
/// here — never in a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The first four bytes were not [`WIRE_MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a version this build does not.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
        /// The version this build speaks.
        supported: u8,
    },
    /// The header's kind byte named no known frame kind.
    BadFrameKind(u8),
    /// The announced payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The announced length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// A payload field failed to decode.
    Codec(CodecError),
    /// A variant tag named no known variant.
    BadTag {
        /// Which tag space (request, response, …).
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// The payload decoded cleanly but bytes were left over — the frame
    /// length and the encoding disagree.
    TrailingBytes {
        /// Undecoded bytes remaining.
        extra: usize,
    },
    /// A decoded id does not exist in the serving universe (see
    /// [`validate_request`]).
    IdOutOfRange {
        /// Which id space.
        what: &'static str,
        /// The offending id.
        id: u64,
        /// Number of interned entries in that space.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {supported})"
                )
            }
            WireError::BadFrameKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            WireError::Oversized { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Codec(e) => write!(f, "payload decode failed: {e}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete payload")
            }
            WireError::IdOutOfRange { what, id, max } => {
                write!(f, "{what} id {id} out of range (universe has {max})")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Transport {
            message: e.to_string(),
        }
    }
}

/// A framing failure when reading off a stream: either the transport
/// itself failed, or the bytes arrived but were not a valid frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The bytes were not a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport failure: {e}"),
            FrameError::Wire(e) => write!(f, "framing failure: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

impl From<FrameError> for ServiceError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io_err) => ServiceError::Transport {
                message: io_err.to_string(),
            },
            FrameError::Wire(w) => w.into(),
        }
    }
}

// ----- stream I/O ------------------------------------------------------

/// Writes one frame: header then payload, no flush (callers batch
/// pipelined writes and flush once).
pub fn write_frame(
    w: &mut impl Write,
    kind: FrameKind,
    request_id: u64,
    payload: &[u8],
) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let header = FrameHeader {
        kind,
        payload_len: payload.len() as u32,
        request_id,
    };
    w.write_all(&header.encode())?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` means the peer closed the stream cleanly
/// at a frame boundary; EOF anywhere inside a frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header) {
        ReadFull::Eof => return Ok(None),
        ReadFull::Short => return Err(WireError::Truncated.into()),
        ReadFull::Err(e) => return Err(e.into()),
        ReadFull::Done => {}
    }
    let header = FrameHeader::parse(&header)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    match read_full(r, &mut payload) {
        ReadFull::Eof | ReadFull::Short => Err(WireError::Truncated.into()),
        ReadFull::Err(e) => Err(e.into()),
        ReadFull::Done => Ok(Some(Frame {
            kind: header.kind,
            request_id: header.request_id,
            payload,
        })),
    }
}

enum ReadFull {
    /// Buffer filled completely.
    Done,
    /// Zero bytes read before EOF.
    Eof,
    /// EOF after a partial read.
    Short,
    /// Transport error.
    Err(io::Error),
}

/// Fills `buf` from `r`, retrying on interrupts. Unlike
/// `Read::read_exact`, distinguishes a clean EOF (no bytes) from a
/// truncated one (some bytes), which framing needs.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> ReadFull {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadFull::Eof
                } else {
                    ReadFull::Short
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return ReadFull::Err(e),
        }
    }
    ReadFull::Done
}

// ----- small encoding helpers ------------------------------------------

fn take_u8(buf: &mut impl Buf) -> Result<u8, WireError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof.into());
    }
    Ok(buf.get_u8())
}

fn take_bool(buf: &mut impl Buf) -> Result<bool, WireError> {
    match take_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::BadTag {
            what: "bool",
            tag: u64::from(other),
        }),
    }
}

fn put_bool(buf: &mut impl BufMut, b: bool) {
    buf.put_u8(u8::from(b));
}

fn take_usize(buf: &mut impl Buf) -> Result<usize, WireError> {
    let v = get_varint(buf)?;
    usize::try_from(v).map_err(|_| WireError::Codec(CodecError::VarintOverflow))
}

/// Fixed 8-byte little-endian u64 — used for state checksums, which are
/// uniformly distributed and would waste space as varints.
fn take_u64_le(buf: &mut impl Buf) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof.into());
    }
    Ok(buf.get_u64_le())
}

fn ensure_consumed(buf: &impl Buf) -> Result<(), WireError> {
    if buf.has_remaining() {
        Err(WireError::TrailingBytes {
            extra: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

fn put_perm(buf: &mut impl BufMut, perm: Perm) {
    put_varint(buf, perm.action.index() as u64);
    put_varint(buf, perm.object.index() as u64);
}

fn take_perm(buf: &mut impl Buf) -> Result<Perm, WireError> {
    let action = ActionId::from_index(take_usize(buf)?);
    let object = ObjectId::from_index(take_usize(buf)?);
    Ok(Perm { action, object })
}

fn put_entity(buf: &mut impl BufMut, entity: Entity) {
    match entity {
        Entity::User(u) => {
            buf.put_u8(0);
            put_varint(buf, u.index() as u64);
        }
        Entity::Role(r) => {
            buf.put_u8(1);
            put_varint(buf, r.index() as u64);
        }
    }
}

fn take_entity(buf: &mut impl Buf) -> Result<Entity, WireError> {
    match take_u8(buf)? {
        0 => Ok(Entity::User(UserId::from_index(take_usize(buf)?))),
        1 => Ok(Entity::Role(RoleId::from_index(take_usize(buf)?))),
        other => Err(WireError::BadTag {
            what: "entity",
            tag: u64::from(other),
        }),
    }
}

fn put_safety_config(buf: &mut impl BufMut, config: &SafetyConfig) {
    put_varint(buf, config.max_steps as u64);
    put_varint(buf, config.max_states as u64);
    buf.put_u8(match config.auth_mode {
        AuthMode::Explicit => 0,
        AuthMode::Ordered(OrderingMode::Strict) => 1,
        AuthMode::Ordered(OrderingMode::Extended) => 2,
        AuthMode::Ordered(OrderingMode::ExtendedWithRevocation) => 3,
    });
    match config.weaker_depth {
        None => buf.put_u8(0),
        Some(d) => {
            buf.put_u8(1);
            put_varint(buf, u64::from(d));
        }
    }
    put_varint(buf, config.jobs as u64);
    buf.put_u8(u8::from(config.escalate) | (u8::from(config.slice) << 1));
}

fn take_safety_config(buf: &mut impl Buf) -> Result<SafetyConfig, WireError> {
    let max_steps = take_usize(buf)?;
    let max_states = take_usize(buf)?;
    let auth_mode = match take_u8(buf)? {
        0 => AuthMode::Explicit,
        1 => AuthMode::Ordered(OrderingMode::Strict),
        2 => AuthMode::Ordered(OrderingMode::Extended),
        3 => AuthMode::Ordered(OrderingMode::ExtendedWithRevocation),
        other => {
            return Err(WireError::BadTag {
                what: "auth mode",
                tag: u64::from(other),
            })
        }
    };
    let weaker_depth = match take_u8(buf)? {
        0 => None,
        1 => {
            let d = get_varint(buf)?;
            Some(u32::try_from(d).map_err(|_| WireError::Codec(CodecError::VarintOverflow))?)
        }
        other => {
            return Err(WireError::BadTag {
                what: "weaker-depth option",
                tag: u64::from(other),
            })
        }
    };
    let jobs = take_usize(buf)?;
    let flags = take_u8(buf)?;
    if flags > 0b11 {
        return Err(WireError::BadTag {
            what: "safety-config flags",
            tag: u64::from(flags),
        });
    }
    Ok(SafetyConfig {
        max_steps,
        max_states,
        auth_mode,
        weaker_depth,
        jobs,
        escalate: flags & 0b01 != 0,
        slice: flags & 0b10 != 0,
    })
}

fn put_outcome(buf: &mut impl BufMut, outcome: &StepOutcome) {
    match outcome.authorization {
        None => buf.put_u8(0),
        Some(auth) => {
            buf.put_u8(1);
            put_varint(buf, auth.held.index() as u64);
            put_varint(buf, auth.target.index() as u64);
        }
    }
    put_bool(buf, outcome.changed);
}

fn take_outcome(buf: &mut impl Buf) -> Result<StepOutcome, WireError> {
    let authorization = match take_u8(buf)? {
        0 => None,
        1 => {
            let held = PrivId::from_index(take_usize(buf)?);
            let target = PrivId::from_index(take_usize(buf)?);
            Some(Authorization { held, target })
        }
        other => {
            return Err(WireError::BadTag {
                what: "authorization option",
                tag: u64::from(other),
            })
        }
    };
    let changed = take_bool(buf)?;
    Ok(StepOutcome {
        authorization,
        changed,
    })
}

fn put_outcomes(buf: &mut impl BufMut, outcomes: &[StepOutcome]) {
    put_varint(buf, outcomes.len() as u64);
    for o in outcomes {
        put_outcome(buf, o);
    }
}

fn take_outcomes(buf: &mut impl Buf) -> Result<Vec<StepOutcome>, WireError> {
    let n = take_usize(buf)?;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(take_outcome(buf)?);
    }
    Ok(out)
}

// ----- request payloads ------------------------------------------------

/// Encodes a [`Request`] payload (tag + fields; no frame header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let buf = &mut Vec::new();
    match req {
        Request::CheckAccess { session, perm } => {
            put_varint(buf, 0);
            put_varint(buf, session.raw());
            put_perm(buf, *perm);
        }
        Request::CreateSession { user } => {
            put_varint(buf, 1);
            put_varint(buf, user.index() as u64);
        }
        Request::ActivateRole { session, role } => {
            put_varint(buf, 2);
            put_varint(buf, session.raw());
            put_varint(buf, role.index() as u64);
        }
        Request::DeactivateRole { session, role } => {
            put_varint(buf, 3);
            put_varint(buf, session.raw());
            put_varint(buf, role.index() as u64);
        }
        Request::DropSession { session } => {
            put_varint(buf, 4);
            put_varint(buf, session.raw());
        }
        Request::Submit { commands } => {
            put_varint(buf, 5);
            put_varint(buf, commands.len() as u64);
            for cmd in commands {
                put_command(buf, cmd);
            }
        }
        Request::AnalyzeReach {
            entity,
            perm,
            config,
        } => {
            put_varint(buf, 6);
            put_entity(buf, *entity);
            put_perm(buf, *perm);
            put_safety_config(buf, config);
        }
        Request::CheckRefinement {
            candidate,
            direction,
            max_witnesses,
        } => {
            put_varint(buf, 7);
            buf.put_u8(match direction {
                RefinementDirection::CandidateRefinesLive => 0,
                RefinementDirection::LiveRefinesCandidate => 1,
            });
            put_varint(buf, *max_witnesses as u64);
            put_policy(buf, candidate);
        }
        Request::AuditTail { max } => {
            put_varint(buf, 8);
            put_varint(buf, *max as u64);
        }
        Request::AuditSince { after, max } => {
            put_varint(buf, 9);
            put_varint(buf, *after);
            put_varint(buf, *max as u64);
        }
        Request::Version => put_varint(buf, 10),
        Request::Stats => put_varint(buf, 11),
        Request::Compact => put_varint(buf, 12),
        Request::Promote => put_varint(buf, 14),
        Request::Lint { sod_pairs } => {
            put_varint(buf, 13);
            put_varint(buf, sod_pairs.len() as u64);
            for (a, b) in sod_pairs {
                put_varint(buf, a.index() as u64);
                put_varint(buf, b.index() as u64);
            }
        }
        Request::Analyze { commands } => {
            put_varint(buf, 15);
            put_varint(buf, commands.len() as u64);
            for cmd in commands {
                put_command(buf, cmd);
            }
        }
        Request::SetConstraints { constraints } => {
            put_varint(buf, 16);
            put_constraints(buf, constraints);
        }
        Request::GetConstraints => put_varint(buf, 17),
    }
    std::mem::take(buf)
}

/// Decodes a [`Request`] payload. `universe` resolves the candidate
/// policy of a `CheckRefinement` (the one variant whose encoding is
/// universe-relative); pass the serving monitor's universe.
pub fn decode_request(payload: &[u8], universe: &Universe) -> Result<Request, WireError> {
    let buf = &mut &payload[..];
    let tag = get_varint(buf)?;
    let req = match tag {
        0 => Request::CheckAccess {
            session: SessionId::from_raw(get_varint(buf)?),
            perm: take_perm(buf)?,
        },
        1 => Request::CreateSession {
            user: UserId::from_index(take_usize(buf)?),
        },
        2 => Request::ActivateRole {
            session: SessionId::from_raw(get_varint(buf)?),
            role: RoleId::from_index(take_usize(buf)?),
        },
        3 => Request::DeactivateRole {
            session: SessionId::from_raw(get_varint(buf)?),
            role: RoleId::from_index(take_usize(buf)?),
        },
        4 => Request::DropSession {
            session: SessionId::from_raw(get_varint(buf)?),
        },
        5 => {
            let n = take_usize(buf)?;
            let mut commands = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                commands.push(get_command(buf)?);
            }
            Request::Submit { commands }
        }
        6 => Request::AnalyzeReach {
            entity: take_entity(buf)?,
            perm: take_perm(buf)?,
            config: take_safety_config(buf)?,
        },
        7 => {
            let direction = match take_u8(buf)? {
                0 => RefinementDirection::CandidateRefinesLive,
                1 => RefinementDirection::LiveRefinesCandidate,
                other => {
                    return Err(WireError::BadTag {
                        what: "refinement direction",
                        tag: u64::from(other),
                    })
                }
            };
            let max_witnesses = take_usize(buf)?;
            let candidate = get_policy(buf, universe)?;
            Request::CheckRefinement {
                candidate,
                direction,
                max_witnesses,
            }
        }
        8 => Request::AuditTail {
            max: take_usize(buf)?,
        },
        9 => Request::AuditSince {
            after: get_varint(buf)?,
            max: take_usize(buf)?,
        },
        10 => Request::Version,
        11 => Request::Stats,
        12 => Request::Compact,
        13 => {
            let n = take_usize(buf)?;
            let mut sod_pairs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let a = RoleId::from_index(take_usize(buf)?);
                let b = RoleId::from_index(take_usize(buf)?);
                sod_pairs.push((a, b));
            }
            Request::Lint { sod_pairs }
        }
        14 => Request::Promote,
        15 => {
            let n = take_usize(buf)?;
            let mut commands = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                commands.push(get_command(buf)?);
            }
            Request::Analyze { commands }
        }
        16 => Request::SetConstraints {
            constraints: get_constraints(buf)?,
        },
        17 => Request::GetConstraints,
        other => {
            return Err(WireError::BadTag {
                what: "request",
                tag: other,
            })
        }
    };
    ensure_consumed(buf)?;
    Ok(req)
}

/// Checks every id a request carries against the serving universe, so
/// out-of-range ids from a hostile or misconfigured client are refused
/// at the boundary instead of reaching index-based analysis code.
///
/// `CheckRefinement` candidates are exempt: the service's own
/// `ids_in_bounds` check (answering [`ServiceError::ForeignPolicy`])
/// already covers them.
pub fn validate_request(req: &Request, universe: &Universe) -> Result<(), WireError> {
    let user = |u: UserId| check_id("user", u.index(), universe.user_count());
    let role = |r: RoleId| check_id("role", r.index(), universe.role_count());
    let perm = |p: Perm| {
        check_id("action", p.action.index(), universe.action_count())?;
        check_id("object", p.object.index(), universe.object_count())
    };
    let term = |t: PrivId| check_id("term", t.index(), universe.term_count());
    let edge = |e: Edge| match e {
        Edge::UserRole(u, r) => {
            user(u)?;
            role(r)
        }
        Edge::RoleRole(a, b) => {
            role(a)?;
            role(b)
        }
        Edge::RolePriv(r, t) => {
            role(r)?;
            term(t)
        }
    };
    match req {
        Request::CheckAccess { perm: p, .. } => perm(*p),
        Request::CreateSession { user: u } => user(*u),
        Request::ActivateRole { role: r, .. } | Request::DeactivateRole { role: r, .. } => role(*r),
        Request::DropSession { .. }
        | Request::AuditTail { .. }
        | Request::AuditSince { .. }
        | Request::Version
        | Request::Stats
        | Request::Compact
        | Request::Promote
        | Request::GetConstraints
        | Request::CheckRefinement { .. } => Ok(()),
        Request::Submit { commands } | Request::Analyze { commands } => {
            for cmd in commands {
                user(cmd.actor)?;
                edge(cmd.edge)?;
            }
            Ok(())
        }
        Request::SetConstraints { constraints } => {
            for (a, b) in &constraints.sod_pairs {
                role(*a)?;
                role(*b)?;
            }
            for e in &constraints.frozen_edges {
                edge(*e)?;
            }
            Ok(())
        }
        Request::AnalyzeReach {
            entity, perm: p, ..
        } => {
            match entity {
                Entity::User(u) => user(*u)?,
                Entity::Role(r) => role(*r)?,
            }
            perm(*p)
        }
        Request::Lint { sod_pairs } => {
            for (a, b) in sod_pairs {
                role(*a)?;
                role(*b)?;
            }
            Ok(())
        }
    }
}

fn check_id(what: &'static str, index: usize, count: usize) -> Result<(), WireError> {
    if index < count {
        Ok(())
    } else {
        Err(WireError::IdOutOfRange {
            what,
            id: index as u64,
            max: count,
        })
    }
}

// ----- response payloads -----------------------------------------------

/// Encodes a [`Response`] payload (tag + fields; no frame header).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let buf = &mut Vec::new();
    match resp {
        Response::Access(granted) => {
            put_varint(buf, 0);
            put_bool(buf, *granted);
        }
        Response::SessionCreated(id) => {
            put_varint(buf, 1);
            put_varint(buf, id.raw());
        }
        Response::RoleActivated => put_varint(buf, 2),
        Response::RoleDeactivated(was) => {
            put_varint(buf, 3);
            put_bool(buf, *was);
        }
        Response::SessionDropped(was) => {
            put_varint(buf, 4);
            put_bool(buf, *was);
        }
        Response::Outcomes(outcomes) => {
            put_varint(buf, 5);
            put_outcomes(buf, outcomes);
        }
        Response::Reach(answer) => {
            put_varint(buf, 6);
            match answer {
                ReachabilityAnswer::Reachable { witness } => {
                    buf.put_u8(0);
                    put_varint(buf, witness.len() as u64);
                    for cmd in witness.iter() {
                        put_command(buf, cmd);
                    }
                }
                ReachabilityAnswer::Unreachable => buf.put_u8(1),
                ReachabilityAnswer::Unknown { truncation } => {
                    buf.put_u8(2);
                    put_varint(buf, truncation.states as u64);
                    put_varint(buf, truncation.depth as u64);
                    put_bool(buf, truncation.cap_hit);
                }
            }
        }
        Response::Refinement(reply) => {
            put_varint(buf, 7);
            put_bool(buf, reply.holds);
            put_varint(buf, reply.total_violations as u64);
            put_varint(buf, reply.witnesses.len() as u64);
            for v in &reply.witnesses {
                put_entity(buf, v.entity);
                put_perm(buf, v.perm);
            }
        }
        Response::Audit(events) => {
            put_varint(buf, 8);
            put_varint(buf, events.len() as u64);
            for ev in events {
                put_varint(buf, ev.seq);
                put_command(buf, &ev.command);
                match ev.decision {
                    Decision::Refused => buf.put_u8(0),
                    Decision::Executed { held, target } => {
                        buf.put_u8(1);
                        put_varint(buf, held.index() as u64);
                        put_varint(buf, target.index() as u64);
                    }
                }
                put_bool(buf, ev.changed);
            }
        }
        Response::Version(info) => {
            put_varint(buf, 9);
            put_varint(buf, info.epoch);
            buf.put_u64_le(info.checksum);
        }
        Response::Stats(stats) => {
            put_varint(buf, 10);
            put_stats(buf, stats);
        }
        Response::Compacted => put_varint(buf, 11),
        Response::Lint(report) => {
            put_varint(buf, 12);
            put_lint_report(buf, report);
        }
        Response::Promoted { term, epoch } => {
            put_varint(buf, 13);
            put_varint(buf, *term);
            put_varint(buf, *epoch);
        }
        Response::Impact(report) => {
            put_varint(buf, 14);
            put_impact_report(buf, report);
        }
        Response::Constraints(set) => {
            put_varint(buf, 15);
            put_constraints(buf, set);
        }
    }
    std::mem::take(buf)
}

/// Decodes a [`Response`] payload. Needs no universe: responses carry
/// only raw ids, never a policy.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let buf = &mut &payload[..];
    let tag = get_varint(buf)?;
    let resp = match tag {
        0 => Response::Access(take_bool(buf)?),
        1 => Response::SessionCreated(SessionId::from_raw(get_varint(buf)?)),
        2 => Response::RoleActivated,
        3 => Response::RoleDeactivated(take_bool(buf)?),
        4 => Response::SessionDropped(take_bool(buf)?),
        5 => Response::Outcomes(take_outcomes(buf)?),
        6 => {
            let answer = match take_u8(buf)? {
                0 => {
                    let n = take_usize(buf)?;
                    let mut commands = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        commands.push(get_command(buf)?);
                    }
                    ReachabilityAnswer::Reachable {
                        witness: CommandQueue::from_commands(commands),
                    }
                }
                1 => ReachabilityAnswer::Unreachable,
                2 => ReachabilityAnswer::Unknown {
                    truncation: Truncation {
                        states: take_usize(buf)?,
                        depth: take_usize(buf)?,
                        cap_hit: take_bool(buf)?,
                    },
                },
                other => {
                    return Err(WireError::BadTag {
                        what: "reachability answer",
                        tag: u64::from(other),
                    })
                }
            };
            Response::Reach(answer)
        }
        7 => {
            let holds = take_bool(buf)?;
            let total_violations = take_usize(buf)?;
            let n = take_usize(buf)?;
            let mut witnesses = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                witnesses.push(RefinementViolation {
                    entity: take_entity(buf)?,
                    perm: take_perm(buf)?,
                });
            }
            Response::Refinement(RefinementReply {
                holds,
                total_violations,
                witnesses,
            })
        }
        8 => {
            let n = take_usize(buf)?;
            let mut events = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let seq = get_varint(buf)?;
                let command = get_command(buf)?;
                let decision = match take_u8(buf)? {
                    0 => Decision::Refused,
                    1 => Decision::Executed {
                        held: PrivId::from_index(take_usize(buf)?),
                        target: PrivId::from_index(take_usize(buf)?),
                    },
                    other => {
                        return Err(WireError::BadTag {
                            what: "audit decision",
                            tag: u64::from(other),
                        })
                    }
                };
                let changed = take_bool(buf)?;
                events.push(AuditEvent {
                    seq,
                    command,
                    decision,
                    changed,
                });
            }
            Response::Audit(events)
        }
        9 => Response::Version(VersionInfo {
            epoch: get_varint(buf)?,
            checksum: take_u64_le(buf)?,
        }),
        10 => Response::Stats(take_stats(buf)?),
        11 => Response::Compacted,
        12 => Response::Lint(take_lint_report(buf)?),
        13 => Response::Promoted {
            term: get_varint(buf)?,
            epoch: get_varint(buf)?,
        },
        14 => Response::Impact(take_impact_report(buf)?),
        15 => Response::Constraints(get_constraints(buf)?),
        other => {
            return Err(WireError::BadTag {
                what: "response",
                tag: other,
            })
        }
    };
    ensure_consumed(buf)?;
    Ok(resp)
}

fn put_stats(buf: &mut impl BufMut, stats: &ServiceStats) {
    put_varint(buf, stats.epoch);
    buf.put_u64_le(stats.checksum);
    put_varint(buf, stats.users as u64);
    put_varint(buf, stats.roles as u64);
    put_varint(buf, stats.edges as u64);
    put_varint(buf, stats.sessions as u64);
    put_varint(buf, stats.audit_retained as u64);
    put_varint(buf, stats.forced_deactivations);
    put_varint(buf, stats.analyses_run);
    put_varint(buf, stats.analyses_indefinite);
    put_varint(buf, stats.lints_run);
    put_varint(buf, stats.lint_findings);
    match stats.recovery {
        None => buf.put_u8(0),
        Some(r) => {
            buf.put_u8(1);
            put_varint(buf, r.replayed as u64);
            put_bool(buf, r.truncated_tail);
            put_varint(buf, r.divergent as u64);
        }
    }
    match stats.replication {
        None => buf.put_u8(0),
        Some(r) => {
            buf.put_u8(1);
            buf.put_u8(match r.role {
                ReplicationRole::Primary => 0,
                ReplicationRole::Replica => 1,
            });
            put_varint(buf, r.term);
            put_varint(buf, r.last_applied_epoch);
            put_varint(buf, r.lag);
        }
    }
}

fn take_stats(buf: &mut impl Buf) -> Result<ServiceStats, WireError> {
    Ok(ServiceStats {
        epoch: get_varint(buf)?,
        checksum: take_u64_le(buf)?,
        users: take_usize(buf)?,
        roles: take_usize(buf)?,
        edges: take_usize(buf)?,
        sessions: take_usize(buf)?,
        audit_retained: take_usize(buf)?,
        forced_deactivations: get_varint(buf)?,
        analyses_run: get_varint(buf)?,
        analyses_indefinite: get_varint(buf)?,
        lints_run: get_varint(buf)?,
        lint_findings: get_varint(buf)?,
        recovery: match take_u8(buf)? {
            0 => None,
            1 => Some(RecoveryReport {
                replayed: take_usize(buf)?,
                truncated_tail: take_bool(buf)?,
                divergent: take_usize(buf)?,
            }),
            other => {
                return Err(WireError::BadTag {
                    what: "recovery option",
                    tag: u64::from(other),
                })
            }
        },
        replication: match take_u8(buf)? {
            0 => None,
            1 => Some(ReplicationStatus {
                role: match take_u8(buf)? {
                    0 => ReplicationRole::Primary,
                    1 => ReplicationRole::Replica,
                    other => {
                        return Err(WireError::BadTag {
                            what: "replication role",
                            tag: u64::from(other),
                        })
                    }
                },
                term: get_varint(buf)?,
                last_applied_epoch: get_varint(buf)?,
                lag: get_varint(buf)?,
            }),
            other => {
                return Err(WireError::BadTag {
                    what: "replication option",
                    tag: u64::from(other),
                })
            }
        },
    })
}

/// One lint/admission finding: kind byte, severity byte, role varint,
/// term option, edge option, confirmation option (v3), message string.
fn put_finding(buf: &mut impl BufMut, f: &Finding) {
    buf.put_u8(match f.kind {
        FindingKind::DeadCommand => 0,
        FindingKind::Unauthorizable => 1,
        FindingKind::RedundantGrant => 2,
        FindingKind::ShadowedGrant => 3,
        FindingKind::NonMonotoneIsland => 4,
        FindingKind::SodConflict => 5,
        FindingKind::FrozenEdgeViolation => 6,
    });
    buf.put_u8(match f.severity {
        Severity::Note => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    });
    put_varint(buf, f.role.index() as u64);
    match f.term {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            put_varint(buf, t.index() as u64);
        }
    }
    match f.edge {
        None => buf.put_u8(0),
        Some(e) => {
            buf.put_u8(1);
            put_edge(buf, e);
        }
    }
    buf.put_u8(match f.confirmation {
        None => 0,
        Some(Confirmation::Confirmed) => 1,
        Some(Confirmation::Potential) => 2,
    });
    put_string(buf, &f.message);
}

fn take_finding(buf: &mut impl Buf) -> Result<Finding, WireError> {
    let kind = match take_u8(buf)? {
        0 => FindingKind::DeadCommand,
        1 => FindingKind::Unauthorizable,
        2 => FindingKind::RedundantGrant,
        3 => FindingKind::ShadowedGrant,
        4 => FindingKind::NonMonotoneIsland,
        5 => FindingKind::SodConflict,
        6 => FindingKind::FrozenEdgeViolation,
        other => {
            return Err(WireError::BadTag {
                what: "finding kind",
                tag: u64::from(other),
            })
        }
    };
    let severity = match take_u8(buf)? {
        0 => Severity::Note,
        1 => Severity::Warning,
        2 => Severity::Error,
        other => {
            return Err(WireError::BadTag {
                what: "severity",
                tag: u64::from(other),
            })
        }
    };
    let role = RoleId::from_index(take_usize(buf)?);
    let term = match take_u8(buf)? {
        0 => None,
        1 => Some(PrivId::from_index(take_usize(buf)?)),
        other => {
            return Err(WireError::BadTag {
                what: "term option",
                tag: u64::from(other),
            })
        }
    };
    let edge = match take_u8(buf)? {
        0 => None,
        1 => Some(get_edge(buf)?),
        other => {
            return Err(WireError::BadTag {
                what: "edge option",
                tag: u64::from(other),
            })
        }
    };
    let confirmation = match take_u8(buf)? {
        0 => None,
        1 => Some(Confirmation::Confirmed),
        2 => Some(Confirmation::Potential),
        other => {
            return Err(WireError::BadTag {
                what: "confirmation option",
                tag: u64::from(other),
            })
        }
    };
    let message = get_string(buf)?;
    Ok(Finding {
        kind,
        severity,
        role,
        term,
        edge,
        confirmation,
        message,
    })
}

fn put_lint_report(buf: &mut impl BufMut, report: &LintReport) {
    put_varint(buf, report.rules_checked as u64);
    put_varint(buf, report.closure_edges as u64);
    put_varint(buf, report.findings.len() as u64);
    for f in &report.findings {
        put_finding(buf, f);
    }
}

fn take_lint_report(buf: &mut impl Buf) -> Result<LintReport, WireError> {
    let rules_checked = take_usize(buf)?;
    let closure_edges = take_usize(buf)?;
    let n = take_usize(buf)?;
    let mut findings = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        findings.push(take_finding(buf)?);
    }
    Ok(LintReport {
        findings,
        rules_checked,
        closure_edges,
    })
}

fn edge_status_byte(status: EdgeStatus) -> u8 {
    match status {
        EdgeStatus::Frozen => 0,
        EdgeStatus::Volatile => 1,
        EdgeStatus::Unreachable => 2,
    }
}

fn take_edge_status(buf: &mut impl Buf) -> Result<EdgeStatus, WireError> {
    match take_u8(buf)? {
        0 => Ok(EdgeStatus::Frozen),
        1 => Ok(EdgeStatus::Volatile),
        2 => Ok(EdgeStatus::Unreachable),
        other => Err(WireError::BadTag {
            what: "edge status",
            tag: u64::from(other),
        }),
    }
}

fn put_impact_report(buf: &mut impl BufMut, report: &ImpactReport) {
    put_outcomes(buf, &report.outcomes);
    put_varint(buf, report.deltas.len() as u64);
    for d in &report.deltas {
        put_edge(buf, d.edge);
        put_bool(buf, d.added);
    }
    put_varint(buf, report.flipped.len() as u64);
    for f in &report.flipped {
        put_varint(buf, f.user.index() as u64);
        put_varint(buf, f.term.index() as u64);
        put_bool(buf, f.now_granted);
    }
    put_bool(buf, report.grow_only_before);
    put_bool(buf, report.grow_only_after);
    put_varint(buf, report.status_changes.len() as u64);
    for c in &report.status_changes {
        put_edge(buf, c.edge);
        buf.put_u8(edge_status_byte(c.before));
        buf.put_u8(edge_status_byte(c.after));
    }
    put_varint(buf, report.findings.len() as u64);
    for f in &report.findings {
        put_finding(buf, f);
    }
    put_varint(buf, report.severed_sessions.len() as u64);
    for s in &report.severed_sessions {
        put_varint(buf, *s);
    }
}

fn take_impact_report(buf: &mut impl Buf) -> Result<ImpactReport, WireError> {
    let outcomes = take_outcomes(buf)?;
    let n = take_usize(buf)?;
    let mut deltas = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let edge = get_edge(buf)?;
        let added = take_bool(buf)?;
        deltas.push(EdgeDelta { edge, added });
    }
    let n = take_usize(buf)?;
    let mut flipped = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        flipped.push(PermFlip {
            user: UserId::from_index(take_usize(buf)?),
            term: PrivId::from_index(take_usize(buf)?),
            now_granted: take_bool(buf)?,
        });
    }
    let grow_only_before = take_bool(buf)?;
    let grow_only_after = take_bool(buf)?;
    let n = take_usize(buf)?;
    let mut status_changes = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        status_changes.push(StatusChange {
            edge: get_edge(buf)?,
            before: take_edge_status(buf)?,
            after: take_edge_status(buf)?,
        });
    }
    let n = take_usize(buf)?;
    let mut findings = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        findings.push(take_finding(buf)?);
    }
    let n = take_usize(buf)?;
    let mut severed_sessions = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        severed_sessions.push(get_varint(buf)?);
    }
    Ok(ImpactReport {
        outcomes,
        deltas,
        flipped,
        grow_only_before,
        grow_only_after,
        status_changes,
        findings,
        severed_sessions,
    })
}

// ----- error payloads --------------------------------------------------

/// The `expected` strings [`ServiceError::Protocol`] can carry. The
/// variant holds a `&'static str`, so decoding matches the received
/// string against this closed set; an unknown string degrades to
/// [`ServiceError::Transport`] rather than failing the decode.
const PROTOCOL_EXPECTED: &[&str] = &[
    "Access",
    "SessionCreated",
    "RoleActivated",
    "RoleDeactivated",
    "SessionDropped",
    "Outcomes",
    "Outcomes(len 1)",
    "Reach",
    "Refinement",
    "Audit",
    "Version",
    "Stats",
    "Compacted",
    "Lint",
    "Promoted",
    "Impact",
    "Constraints",
];

/// Encodes a [`ServiceError`] payload (tag + fields; no frame header).
///
/// Two encodings are lossy, by design: a `Backend` store error crosses
/// as its display string (rebuilt as an I/O error on the far side), and
/// a `Protocol` string outside the known set decodes as `Transport`.
pub fn encode_error(err: &ServiceError) -> Vec<u8> {
    let buf = &mut Vec::new();
    match err {
        ServiceError::UnknownSession(id) => {
            put_varint(buf, 0);
            put_varint(buf, id.raw());
        }
        ServiceError::Session(SessionError::ActivationDenied { user, role }) => {
            put_varint(buf, 1);
            put_varint(buf, user.index() as u64);
            put_varint(buf, role.index() as u64);
        }
        ServiceError::Backend { applied, error } => {
            put_varint(buf, 2);
            put_outcomes(buf, applied);
            put_string(buf, &error.to_string());
        }
        ServiceError::Aborted => put_varint(buf, 3),
        ServiceError::ForeignPolicy => put_varint(buf, 4),
        ServiceError::InvalidTenant(t) => {
            put_varint(buf, 5);
            put_string(buf, t);
        }
        ServiceError::UnknownTenant(t) => {
            put_varint(buf, 6);
            put_string(buf, t);
        }
        ServiceError::Recovery { tenant, divergent } => {
            put_varint(buf, 7);
            put_string(buf, tenant);
            put_varint(buf, *divergent as u64);
        }
        ServiceError::Protocol { expected } => {
            put_varint(buf, 8);
            put_string(buf, expected);
        }
        ServiceError::Transport { message } => {
            put_varint(buf, 9);
            put_string(buf, message);
        }
        ServiceError::ReadOnly => put_varint(buf, 10),
        ServiceError::Admission(report) => {
            put_varint(buf, 11);
            put_varint(buf, report.findings.len() as u64);
            for f in &report.findings {
                put_finding(buf, f);
            }
            put_varint(buf, report.constraints_checked as u64);
        }
    }
    std::mem::take(buf)
}

/// Decodes a [`ServiceError`] payload.
pub fn decode_error(payload: &[u8]) -> Result<ServiceError, WireError> {
    let buf = &mut &payload[..];
    let tag = get_varint(buf)?;
    let err = match tag {
        0 => ServiceError::UnknownSession(SessionId::from_raw(get_varint(buf)?)),
        1 => {
            let user = UserId::from_index(take_usize(buf)?);
            let role = RoleId::from_index(take_usize(buf)?);
            ServiceError::Session(SessionError::ActivationDenied { user, role })
        }
        2 => {
            let applied = take_outcomes(buf)?;
            let message = get_string(buf)?;
            ServiceError::Backend {
                applied,
                error: StoreError::Io(io::Error::other(message)),
            }
        }
        3 => ServiceError::Aborted,
        4 => ServiceError::ForeignPolicy,
        5 => ServiceError::InvalidTenant(get_string(buf)?),
        6 => ServiceError::UnknownTenant(get_string(buf)?),
        7 => ServiceError::Recovery {
            tenant: get_string(buf)?,
            divergent: take_usize(buf)?,
        },
        8 => {
            let s = get_string(buf)?;
            match PROTOCOL_EXPECTED.iter().find(|known| ***known == s) {
                Some(known) => ServiceError::Protocol { expected: known },
                None => ServiceError::Transport {
                    message: format!("protocol violation: expected {s} response"),
                },
            }
        }
        9 => ServiceError::Transport {
            message: get_string(buf)?,
        },
        10 => ServiceError::ReadOnly,
        11 => {
            let n = take_usize(buf)?;
            let mut findings = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                findings.push(take_finding(buf)?);
            }
            let constraints_checked = take_usize(buf)?;
            ServiceError::Admission(AdmissionReport {
                findings,
                constraints_checked,
            })
        }
        other => {
            return Err(WireError::BadTag {
                what: "error",
                tag: other,
            })
        }
    };
    ensure_consumed(buf)?;
    Ok(err)
}

// ---------------------------------------------------------------------------
// Replication payloads (frame kinds 4-6)
// ---------------------------------------------------------------------------

/// A decoded [`FrameKind::ReplDelta`] payload: one published epoch's
/// edge changes plus the checksum of the post-apply policy state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplDeltaFrame {
    /// The primary's fencing term. Replicas reject frames whose term is
    /// below the highest they have seen, so a deposed primary cannot
    /// roll a follower back after `promote`.
    pub term: u64,
    /// The epoch this delta set publishes. Must be exactly one past the
    /// replica's current epoch or the replica refuses and re-bootstraps.
    pub epoch: u64,
    /// The edge additions/removals of this epoch, in application order.
    pub deltas: Vec<EdgeDelta>,
    /// [`adminref_core::checksum`] digest of the full policy state
    /// *after* applying `deltas`; a mismatch on the replica is
    /// divergence and triggers re-bootstrap.
    pub checksum: u64,
}

/// Encodes a [`FrameKind::ReplSubscribe`] payload: the highest term the
/// follower has seen and, if it already holds state, the epoch it has
/// applied through (`None` requests a full snapshot bootstrap).
pub fn encode_repl_subscribe(term: u64, last_applied: Option<u64>) -> Vec<u8> {
    let buf = &mut Vec::new();
    put_varint(buf, term);
    match last_applied {
        None => buf.put_u8(0),
        Some(epoch) => {
            buf.put_u8(1);
            put_varint(buf, epoch);
        }
    }
    std::mem::take(buf)
}

/// Decodes a [`FrameKind::ReplSubscribe`] payload.
pub fn decode_repl_subscribe(payload: &[u8]) -> Result<(u64, Option<u64>), WireError> {
    let buf = &mut &payload[..];
    let term = get_varint(buf)?;
    let last_applied = match take_u8(buf)? {
        0 => None,
        1 => Some(get_varint(buf)?),
        other => {
            return Err(WireError::BadTag {
                what: "subscribe epoch option",
                tag: u64::from(other),
            })
        }
    };
    ensure_consumed(buf)?;
    Ok((term, last_applied))
}

/// Encodes a [`FrameKind::ReplSnapshot`] payload: the primary's term,
/// the epoch the snapshot captures, and the CRC-framed state blob
/// produced by [`adminref_store::encode_state`].
pub fn encode_repl_snapshot(term: u64, epoch: u64, state: &[u8]) -> Vec<u8> {
    let buf = &mut Vec::new();
    put_varint(buf, term);
    put_varint(buf, epoch);
    put_varint(buf, state.len() as u64);
    buf.extend_from_slice(state);
    std::mem::take(buf)
}

/// Decodes a [`FrameKind::ReplSnapshot`] payload into
/// `(term, epoch, state_blob)`.
pub fn decode_repl_snapshot(payload: &[u8]) -> Result<(u64, u64, Vec<u8>), WireError> {
    let buf = &mut &payload[..];
    let term = get_varint(buf)?;
    let epoch = get_varint(buf)?;
    let len = take_usize(buf)?;
    if buf.remaining() < len {
        return Err(WireError::Codec(CodecError::UnexpectedEof));
    }
    let state = buf[..len].to_vec();
    buf.advance(len);
    ensure_consumed(buf)?;
    Ok((term, epoch, state))
}

/// Encodes a [`FrameKind::ReplDelta`] payload (see [`ReplDeltaFrame`]
/// for field semantics).
pub fn encode_repl_delta(term: u64, epoch: u64, deltas: &[EdgeDelta], checksum: u64) -> Vec<u8> {
    let buf = &mut Vec::new();
    put_varint(buf, term);
    put_varint(buf, epoch);
    put_varint(buf, deltas.len() as u64);
    for d in deltas {
        put_edge(buf, d.edge);
        put_bool(buf, d.added);
    }
    buf.put_u64_le(checksum);
    std::mem::take(buf)
}

/// Decodes a [`FrameKind::ReplDelta`] payload.
pub fn decode_repl_delta(payload: &[u8]) -> Result<ReplDeltaFrame, WireError> {
    let buf = &mut &payload[..];
    let term = get_varint(buf)?;
    let epoch = get_varint(buf)?;
    let n = take_usize(buf)?;
    let mut deltas = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let edge = get_edge(buf)?;
        let added = take_bool(buf)?;
        deltas.push(EdgeDelta { edge, added });
    }
    let checksum = take_u64_le(buf)?;
    ensure_consumed(buf)?;
    Ok(ReplDeltaFrame {
        term,
        epoch,
        deltas,
        checksum,
    })
}
