//! # adminref-service
//!
//! The typed serving surface over the reference monitor: every monitor
//! capability — access checks, session lifecycle, administrative
//! batches, reachability and refinement analyses, audit reads,
//! version/stats — is one variant of a [`Request`]/[`Response`] enum
//! pair, answered through one [`PolicyService::call`] entry point with
//! one unified [`ServiceError`]. The paper's reference monitor mediates
//! every access and administrative step; this crate is that mediation
//! as an API.
//!
//! Six layers:
//!
//! * **Protocol** ([`protocol`]) — the `Request`/`Response` alphabet,
//!   the error, and the [`PolicyService`] trait whose typed convenience
//!   methods are thin wrappers over `call`.
//! * **Group commit** ([`group_commit`]) — the write path of
//!   [`MonitorService`]: concurrent submitters enqueue into a shared
//!   in-flight batch; a self-elected leader drains it as **one**
//!   monitor batch (one Definition-5 serial execution, one WAL sync,
//!   one `ReachIndex` rebuild, one published epoch) and hands each
//!   submitter its own [`StepOutcome`](adminref_core::transition::StepOutcome)s
//!   through a completion slot. Serial semantics are preserved —
//!   outcomes equal *some* serial interleaving of the submitters, which
//!   the suite verifies differentially against the single-lock monitor.
//! * **Routing** ([`router`]) — [`ServiceRouter`] maps tenant ids to
//!   independent monitors (per-tenant store directories in durable
//!   mode, lazy open, LRU eviction cap), so one process serves many
//!   coexisting policies — the precondition for refinement workflows
//!   that compare and migrate across policy versions.
//! * **Wire codec** ([`wire`]) — the versioned binary serialization of
//!   the whole alphabet: a fixed frame header (magic, [`WIRE_VERSION`],
//!   kind, payload length, echoed request id) and per-variant payload
//!   encodings built from the store codec's primitives. Decoders return
//!   typed [`WireError`]s, never panic; the format is specified in
//!   `specs/wire_protocol.md` and pinned byte-for-byte by a golden
//!   fixture test.
//! * **Daemon** ([`daemon`]) — serves a `PolicyService` over TCP or
//!   Unix-domain sockets: pipelined connections, out-of-order replies
//!   matched by request id, per-connection sessions, burst dispatch
//!   into group commit, graceful drain on shutdown.
//! * **Client** ([`client`]) — [`WireClient`], a blocking socket client
//!   that itself implements [`PolicyService`], so local and remote
//!   services are interchangeable behind one trait.
//!
//! `adminref bench-service` measures the group-commit write path
//! against per-call writer locking, locally and over a socket
//! transport; the CI perf-smoke job gates the multi-writer speedups
//! against checked-in floors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Serving-path hygiene: no unwrap/expect/panic! outside tests (the
// test exemption lives in the workspace clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod client;
pub mod daemon;
pub mod group_commit;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod service;
pub mod wire;

pub use client::WireClient;
pub use daemon::{Daemon, DaemonConfig, WireListener};
pub use group_commit::GroupCommit;
pub use protocol::{
    PolicyService, RefinementDirection, RefinementReply, ReplicationRole, ReplicationStatus,
    Request, Response, ServiceError, ServiceStats, VersionInfo,
};
pub use replication::{FollowTarget, Follower, ReplicatedService, ReplicationHub};
pub use router::{RouterConfig, ServiceRouter, TenantStateFactory};
pub use service::MonitorService;
pub use wire::{WireError, MAX_PAYLOAD, WIRE_VERSION};
