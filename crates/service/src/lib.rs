//! # adminref-service
//!
//! The typed serving surface over the reference monitor: every monitor
//! capability — access checks, session lifecycle, administrative
//! batches, reachability and refinement analyses, audit reads,
//! version/stats — is one variant of a [`Request`]/[`Response`] enum
//! pair, answered through one [`PolicyService::call`] entry point with
//! one unified [`ServiceError`]. The paper's reference monitor mediates
//! every access and administrative step; this crate is that mediation
//! as an API.
//!
//! Three layers:
//!
//! * **Protocol** ([`protocol`]) — the `Request`/`Response` alphabet,
//!   the error, and the [`PolicyService`] trait whose typed convenience
//!   methods are thin wrappers over `call`.
//! * **Group commit** ([`group_commit`]) — the write path of
//!   [`MonitorService`]: concurrent submitters enqueue into a shared
//!   in-flight batch; a self-elected leader drains it as **one**
//!   monitor batch (one Definition-5 serial execution, one WAL sync,
//!   one `ReachIndex` rebuild, one published epoch) and hands each
//!   submitter its own [`StepOutcome`](adminref_core::transition::StepOutcome)s
//!   through a completion slot. Serial semantics are preserved —
//!   outcomes equal *some* serial interleaving of the submitters, which
//!   the suite verifies differentially against the single-lock monitor.
//! * **Routing** ([`router`]) — [`ServiceRouter`] maps tenant ids to
//!   independent monitors (per-tenant store directories in durable
//!   mode, lazy open, LRU eviction cap), so one process serves many
//!   coexisting policies — the precondition for refinement workflows
//!   that compare and migrate across policy versions.
//!
//! `adminref bench-service` measures the group-commit write path
//! against per-call writer locking; the CI perf-smoke job gates its
//! multi-writer speedup against checked-in floors.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Serving-path hygiene: no unwrap/expect/panic! outside tests (the
// test exemption lives in the workspace clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod group_commit;
pub mod protocol;
pub mod router;
pub mod service;

pub use group_commit::GroupCommit;
pub use protocol::{
    PolicyService, RefinementDirection, RefinementReply, Request, Response, ServiceError,
    ServiceStats,
};
pub use router::{RouterConfig, ServiceRouter, TenantStateFactory};
pub use service::MonitorService;
