//! [`MonitorService`]: the [`PolicyService`] server over one
//! [`ReferenceMonitor`], with group-commit writes.
//!
//! Two servers exist for one monitor alphabet:
//!
//! * [`MonitorService`] — the production path. `Submit` requests go
//!   through the [`GroupCommit`] combiner, so concurrent writers
//!   coalesce into one batch / one WAL sync / one index rebuild / one
//!   published epoch per drain.
//! * `impl PolicyService for ReferenceMonitor` — the per-call baseline:
//!   every `Submit` takes the writer mutex for itself and pays a full
//!   publication. This is the path `adminref bench-service` measures
//!   group commit against, and the drop-in adapter when a single caller
//!   already owns a monitor.

use adminref_core::ids::Entity;
use adminref_core::reach::ReachIndex;
use adminref_core::refinement::violations_between;
use adminref_core::safety::SafetyConfig;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};

use crate::group_commit::GroupCommit;
use crate::protocol::{
    PolicyService, RefinementDirection, RefinementReply, Request, Response, ServiceError,
    ServiceStats, VersionInfo,
};

/// A [`PolicyService`] over one reference monitor, with group-commit
/// writes. See the [crate docs](crate) for the serving model.
pub struct MonitorService {
    monitor: ReferenceMonitor,
    writes: GroupCommit,
}

impl MonitorService {
    /// Wraps an existing monitor.
    pub fn new(monitor: ReferenceMonitor) -> Self {
        MonitorService {
            monitor,
            writes: GroupCommit::new(),
        }
    }

    /// Sets a leader gather window on the write combiner: the group
    /// leader waits this long after its first drain, folding in
    /// requests that arrive meanwhile, before executing. Keep it zero
    /// (the default) for local callers; a network daemon serving
    /// pipelined connections sets a few tens of microseconds so a
    /// round-trip's straggler train still coalesces into one batch —
    /// see [`GroupCommit::with_gather`].
    pub fn with_write_gather(mut self, gather: std::time::Duration) -> Self {
        self.writes = GroupCommit::with_gather(gather);
        self
    }

    /// Convenience: an in-memory monitor over the given state.
    pub fn in_memory(
        universe: adminref_core::universe::Universe,
        policy: adminref_core::policy::Policy,
        config: MonitorConfig,
    ) -> Self {
        MonitorService::new(ReferenceMonitor::new(universe, policy, config))
    }

    /// The underlying monitor (reads, analyses, and maintenance ops like
    /// `compact`/`sync` remain directly available).
    pub fn monitor(&self) -> &ReferenceMonitor {
        &self.monitor
    }
}

impl PolicyService for MonitorService {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        match request {
            // The write path: coalesce with every request in flight.
            Request::Submit { commands } => self
                .writes
                .submit(&self.monitor, commands)
                .map(Response::Outcomes),
            read => dispatch(&self.monitor, read),
        }
    }

    /// A burst's `Submit`s enqueue into the combiner under one queue
    /// acquisition (guaranteed same drain); everything else is served
    /// per request. Results come back in request order either way.
    fn call_many(&self, requests: Vec<Request>) -> Vec<Result<Response, ServiceError>> {
        enum Shaped {
            Write,
            Read(Request),
        }
        let mut writes: Vec<Vec<adminref_core::command::Command>> = Vec::new();
        let shaped: Vec<Shaped> = requests
            .into_iter()
            .map(|request| match request {
                Request::Submit { commands } => {
                    writes.push(commands);
                    Shaped::Write
                }
                read => Shaped::Read(read),
            })
            .collect();
        let mut write_results = self.writes.submit_many(&self.monitor, writes).into_iter();
        shaped
            .into_iter()
            .map(|entry| match entry {
                Shaped::Write => match write_results.next() {
                    Some(result) => result.map(Response::Outcomes),
                    // Unreachable: submit_many returns one result per
                    // enqueued request.
                    None => Err(ServiceError::Aborted),
                },
                Shaped::Read(read) => dispatch(&self.monitor, read),
            })
            .collect()
    }
}

/// The per-call baseline server: `Submit` executes immediately under
/// the writer mutex (one lock acquisition, WAL sync, index rebuild, and
/// epoch per request). Reads are identical to [`MonitorService`].
impl PolicyService for ReferenceMonitor {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        dispatch(self, request)
    }
}

/// Serves one request directly against a monitor. `Submit` runs as one
/// per-call batch; group-commit servers intercept it before reaching
/// here.
pub(crate) fn dispatch(
    monitor: &ReferenceMonitor,
    request: Request,
) -> Result<Response, ServiceError> {
    match request {
        Request::CheckAccess { session, perm } => {
            Ok(Response::Access(monitor.check_access(session, perm)?))
        }
        Request::CreateSession { user } => {
            Ok(Response::SessionCreated(monitor.create_session(user)))
        }
        Request::ActivateRole { session, role } => {
            monitor.activate_role(session, role)?;
            Ok(Response::RoleActivated)
        }
        Request::DeactivateRole { session, role } => Ok(Response::RoleDeactivated(
            monitor.deactivate_role(session, role)?,
        )),
        Request::DropSession { session } => {
            Ok(Response::SessionDropped(monitor.drop_session(session)))
        }
        Request::Submit { commands } => {
            let (outcomes, error) = monitor.submit_batch_outcomes(&commands);
            match error {
                None => Ok(Response::Outcomes(outcomes)),
                Some(adminref_monitor::MonitorError::Store(store_error)) => {
                    Err(ServiceError::Backend {
                        applied: outcomes,
                        error: store_error,
                    })
                }
                Some(other) => Err(other.into()),
            }
        }
        Request::AnalyzeReach {
            entity,
            perm,
            config,
        } => Ok(Response::Reach(analyze(monitor, entity, perm, config))),
        Request::CheckRefinement {
            candidate,
            direction,
            max_witnesses,
        } => check_refinement(monitor, candidate, direction, max_witnesses),
        Request::AuditTail { max } => Ok(Response::Audit(monitor.audit_tail(max))),
        Request::AuditSince { after, max } => {
            Ok(Response::Audit(monitor.audit_events_since(after, max)))
        }
        Request::Version => {
            let snapshot = monitor.read_snapshot();
            Ok(Response::Version(VersionInfo {
                epoch: snapshot.epoch,
                checksum: snapshot.checksum(),
            }))
        }
        Request::Stats => Ok(Response::Stats(stats(monitor))),
        Request::Compact => {
            monitor.compact()?;
            Ok(Response::Compacted)
        }
        Request::Lint { sod_pairs } => Ok(Response::Lint(monitor.lint_policy(sod_pairs))),
        Request::Analyze { commands } => Ok(Response::Impact(monitor.analyze_batch(&commands))),
        Request::SetConstraints { constraints } => {
            monitor.set_constraints(constraints)?;
            Ok(Response::Constraints((*monitor.constraints()).clone()))
        }
        Request::GetConstraints => Ok(Response::Constraints((*monitor.constraints()).clone())),
        // A bare monitor is always writable; `promote` is idempotent and
        // answers term 0 ("replication not enabled"). The replication
        // hub's service wrapper intercepts this for real followers.
        Request::Promote => Ok(Response::Promoted {
            term: 0,
            epoch: monitor.version(),
        }),
    }
}

fn analyze(
    monitor: &ReferenceMonitor,
    entity: Entity,
    perm: adminref_core::ids::Perm,
    config: SafetyConfig,
) -> adminref_core::safety::ReachabilityAnswer {
    monitor.analyze_perm_reachable(entity, perm, config)
}

/// Definition-6 refinement between the live policy and a caller-supplied
/// candidate, answered from the published snapshot (never blocks the
/// writer).
fn check_refinement(
    monitor: &ReferenceMonitor,
    candidate: adminref_core::policy::Policy,
    direction: RefinementDirection,
    max_witnesses: usize,
) -> Result<Response, ServiceError> {
    let snapshot = monitor.read_snapshot();
    // The tag rejects policies from unrelated universes, but clones
    // preserve tags — a candidate built on a client-*extended* clone
    // carries the right tag with out-of-range ids, so the bounds check
    // is what keeps a malformed request from panicking the server.
    if candidate.universe_tag() != snapshot.universe().tag()
        || !candidate.ids_in_bounds(snapshot.universe())
    {
        return Err(ServiceError::ForeignPolicy);
    }
    // The live policy's index is prebuilt in the snapshot; only the
    // candidate's needs building.
    let live = snapshot.policy();
    let live_idx = snapshot.reach();
    let candidate_idx = ReachIndex::build(snapshot.universe(), &candidate);
    let (phi, phi_idx, psi, psi_idx) = match direction {
        RefinementDirection::CandidateRefinesLive => (live, live_idx, &candidate, &candidate_idx),
        RefinementDirection::LiveRefinesCandidate => (&candidate, &candidate_idx, live, live_idx),
    };
    let violations = violations_between(snapshot.universe(), phi, phi_idx, psi, psi_idx, false);
    let total_violations = violations.len();
    let witnesses = violations
        .into_iter()
        .take(max_witnesses)
        .collect::<Vec<_>>();
    Ok(Response::Refinement(RefinementReply {
        holds: total_violations == 0,
        total_violations,
        witnesses,
    }))
}

fn stats(monitor: &ReferenceMonitor) -> ServiceStats {
    let snapshot = monitor.read_snapshot();
    let (analyses_run, analyses_indefinite) = monitor.analysis_counts();
    let (lints_run, lint_findings) = monitor.lint_counts();
    ServiceStats {
        epoch: snapshot.epoch,
        checksum: snapshot.checksum(),
        users: snapshot.universe().user_count(),
        roles: snapshot.universe().role_count(),
        edges: snapshot.policy().edge_count(),
        sessions: monitor.session_count(),
        audit_retained: monitor.audit_len(),
        forced_deactivations: monitor.session_revocations_total(),
        analyses_run,
        analyses_indefinite,
        lints_run,
        lint_findings,
        recovery: monitor.recovery_report(),
        replication: None,
    }
}
